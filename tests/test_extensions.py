"""Tests for the paper-named extensions: request forwarding and POST."""

import pytest

from repro import SWEBCluster, meiko_cs2, sun_now
from repro.core import CostParameters


def forwarding_cluster(policy="file-locality", n=3, **kw):
    params = CostParameters(reassignment="forward", **kw.pop("params_kw", {}))
    cluster = SWEBCluster(meiko_cs2(n), policy=policy, seed=1, params=params,
                          **kw)
    cluster.add_file("/on2.gif", 1.5e6, home=2)
    cluster.add_file("/on0.html", 2e4, home=0)
    return cluster


# ------------------------------------------------------------- forwarding
def test_forwarding_serves_remote_file_without_client_redirect():
    cluster = forwarding_cluster()
    proc = cluster.fetch("/on2.gif")
    rec = cluster.run(until=proc)
    assert rec.ok
    assert rec.dns_node == 0
    assert rec.served_by == 2          # fulfilled by the file's home
    assert rec.redirected              # marked as moved
    # No 302 ever reached the client: zero redirects issued.
    assert cluster.total_redirections() == 0
    assert cluster.servers[0].forwards_issued == 1


def test_forward_vs_redirect_crossover_by_file_size():
    # Forwarding saves the client's second round trip but relays the whole
    # response through the origin (a second TCP-stack pass): for a
    # high-latency client it wins on small, latency-bound files and loses
    # on large, bandwidth-bound ones — supporting the paper's choice of
    # redirection for a digital-library (big-file) workload.
    from repro.web.client import RUTGERS_CLIENT

    def fetch_time(reassignment, size):
        params = CostParameters(reassignment=reassignment)
        cluster = SWEBCluster(meiko_cs2(3), policy="file-locality", seed=1,
                              params=params)
        cluster.add_file("/on2.gif", size, home=2)
        proc = cluster.client(profile=RUTGERS_CLIENT).fetch("/on2.gif")
        rec = cluster.run(until=proc)
        assert rec.ok and rec.served_by == 2
        return rec.response_time

    assert fetch_time("forward", 1e3) < fetch_time("redirect", 1e3)
    assert fetch_time("forward", 1.5e6) > 0.95 * fetch_time("redirect", 1.5e6)


def test_forwarding_phase_accounting_does_not_double_count():
    cluster = forwarding_cluster()
    proc = cluster.fetch("/on2.gif")
    rec = cluster.run(until=proc)
    assert sum(rec.phases.values()) == pytest.approx(rec.response_time,
                                                     rel=0.10)


def test_forwarding_falls_back_to_local_when_peer_full():
    params = CostParameters(reassignment="forward")
    cluster = SWEBCluster(meiko_cs2(2), policy="file-locality", seed=1,
                          params=params, backlog=1)
    cluster.add_file("/on1.gif", 1.5e6, home=1)

    # Saturate node 1's single slot, then ask node 0 for its file.
    blocker = cluster.client()
    procs = []
    # Two DNS rotations: first goes to node 0 (forwarded to 1), etc.
    for _ in range(4):
        procs.append(blocker.fetch("/on1.gif"))
    for p in procs:
        cluster.run(until=p)
    recs = cluster.metrics.records
    assert any(r.ok and r.served_by == 0 for r in recs) or \
        any(r.dropped for r in recs)  # fallback or refusal, never deadlock


def test_forwarding_response_crosses_fabric():
    cluster = forwarding_cluster()
    net_before = cluster.network.bytes_sent
    proc = cluster.fetch("/on2.gif")
    cluster.run(until=proc)
    # Request text out + full response back: fabric carried > 1.5 MB.
    assert cluster.network.bytes_sent - net_before > 1.4e6


def test_redirect_mode_issues_302_instead():
    cluster = SWEBCluster(meiko_cs2(3), policy="file-locality", seed=1)
    cluster.add_file("/on2.gif", 1.5e6, home=2)
    proc = cluster.fetch("/on2.gif")
    rec = cluster.run(until=proc)
    assert rec.ok and rec.redirected
    assert cluster.total_redirections() == 1
    assert sum(s.forwards_issued for s in cluster.servers.values()) == 0


def test_reassignment_validation():
    with pytest.raises(ValueError):
        CostParameters(reassignment="teleport")


# -------------------------------------------------------------------- POST
def post_cluster(enable_post=True):
    params = CostParameters(enable_post=enable_post)
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=1, params=params)
    cluster.add_cgi("/cgi-bin/upload", cpu_ops=4e6, output_bytes=500.0)
    return cluster


def test_post_disabled_returns_501():
    cluster = post_cluster(enable_post=False)
    proc = cluster.client().fetch("/cgi-bin/upload", method="POST",
                                  body_bytes=1e4)
    rec = cluster.run(until=proc)
    assert rec.status == 501


def test_post_enabled_executes_cgi():
    cluster = post_cluster(enable_post=True)
    proc = cluster.client().fetch("/cgi-bin/upload", method="POST",
                                  body_bytes=1e4)
    rec = cluster.run(until=proc)
    assert rec.status == 200
    assert cluster.cpu_seconds_by_category().get("cgi", 0.0) > 0


def test_post_to_static_path_rejected():
    cluster = post_cluster(enable_post=True)
    cluster.add_file("/page.html", 1e3, home=0)
    proc = cluster.client().fetch("/page.html", method="POST")
    rec = cluster.run(until=proc)
    assert rec.status == 501


def test_post_upload_time_scales_with_body():
    def post_time(body):
        cluster = post_cluster(enable_post=True)
        proc = cluster.client().fetch("/cgi-bin/upload", method="POST",
                                      body_bytes=body)
        rec = cluster.run(until=proc)
        assert rec.ok
        return rec.response_time

    small = post_time(1e3)
    big = post_time(5e6)   # 5 MB at the client's 5 MB/s uplink ~ 1 s
    assert big > small + 0.5


def test_post_never_redirected():
    params = CostParameters(enable_post=True)
    cluster = SWEBCluster(meiko_cs2(3), policy="file-locality", seed=1,
                          params=params)
    cluster.add_cgi("/cgi-bin/ingest", cpu_ops=1e6, output_bytes=100.0)
    proc = cluster.client().fetch("/cgi-bin/ingest", method="POST",
                                  body_bytes=1e3)
    rec = cluster.run(until=proc)
    assert rec.ok and not rec.redirected
