"""Tests for DNS-cached client hosts in the scenario runner."""

import pytest

from repro.cluster import meiko_cs2
from repro.core import CostParameters
from repro.experiments.runner import Scenario, run_scenario
from repro.sim import RandomStreams
from repro.workload import burst_workload, uniform_corpus, uniform_sampler


def scenario(hosts, ttl, rps=4, duration=4.0, n=4, policy="round-robin",
             **kw):
    corpus = uniform_corpus(8, 1e4, n)
    wl = burst_workload(rps, duration,
                        uniform_sampler(corpus, RandomStreams(1)))
    return Scenario(name="hosts", spec=meiko_cs2(n), corpus=corpus,
                    workload=wl, policy=policy, seed=1,
                    hosts_per_profile=hosts, dns_ttl=ttl, **kw)


def test_single_host_no_ttl_rotates_per_request():
    res = run_scenario(scenario(hosts=1, ttl=0.0))
    dns_nodes = [r.dns_node for r in res.metrics.records]
    # Ideal rotation: every node appears equally often.
    counts = {n: dns_nodes.count(n) for n in set(dns_nodes)}
    assert len(counts) == 4
    assert max(counts.values()) - min(counts.values()) <= 1


def test_cached_hosts_pin_to_nodes():
    res = run_scenario(scenario(hosts=2, ttl=1000.0))
    by_client: dict[str, set] = {}
    for rec in res.metrics.records:
        by_client.setdefault(rec.client, set()).add(rec.dns_node)
    # Each host resolved once and stuck with its node for the whole run.
    assert set(by_client) == {"ucsb#0", "ucsb#1"}
    for nodes in by_client.values():
        assert len(nodes) == 1
    # Two hosts on four nodes: two nodes never saw DNS traffic.
    seen = set().union(*by_client.values())
    assert len(seen) == 2


def test_hosts_split_profile_load_round_robin():
    res = run_scenario(scenario(hosts=4, ttl=1000.0))
    counts = {}
    for rec in res.metrics.records:
        counts[rec.client] = counts.get(rec.client, 0) + 1
    assert len(counts) == 4
    assert max(counts.values()) - min(counts.values()) <= 1


def test_sweb_rebalances_pinned_hosts():
    # Two pinned hosts on four nodes: round-robin serves on two nodes;
    # SWEB spreads the heavy share with redirections.
    rr = run_scenario(scenario(hosts=2, ttl=1000.0, rps=10, duration=6.0,
                               policy="round-robin"))
    sw = run_scenario(scenario(hosts=2, ttl=1000.0, rps=10, duration=6.0,
                               policy="sweb"))
    rr_nodes = set(r.served_by for r in rr.metrics.records if r.ok)
    sw_nodes = set(r.served_by for r in sw.metrics.records if r.ok)
    assert len(rr_nodes) == 2
    assert len(sw_nodes) >= len(rr_nodes)


def test_forwarding_works_under_scenario_load():
    params = CostParameters(reassignment="forward")
    res = run_scenario(scenario(hosts=2, ttl=1000.0, rps=8, duration=6.0,
                                policy="sweb", params=params))
    assert res.drop_rate == 0.0
    forwards = sum(s.forwards_issued
                   for s in res.cluster.servers.values())
    redirects = res.cluster.total_redirections()
    assert redirects == 0          # no 302s in forward mode
    assert forwards >= 0           # mechanism exercised without error
