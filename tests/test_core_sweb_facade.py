"""Facade-level tests for SWEBCluster."""

import pytest

from repro import SWEBCluster, meiko_cs2, sun_now


def test_default_spec_is_six_node_meiko():
    cluster = SWEBCluster(start_loadd=False)
    assert len(cluster.nodes) == 6
    assert cluster.spec.name == "meiko"


def test_repr_mentions_policy_and_nodes():
    cluster = SWEBCluster(meiko_cs2(3), policy="file-locality",
                          start_loadd=False)
    text = repr(cluster)
    assert "file-locality" in text and "nodes=3" in text


def test_cpu_share_empty_before_time_passes():
    cluster = SWEBCluster(meiko_cs2(2), start_loadd=False)
    assert cluster.cpu_share_by_category() == {}


def test_views_brokers_servers_loadds_aligned():
    cluster = SWEBCluster(meiko_cs2(4), start_loadd=False)
    assert set(cluster.views) == set(cluster.brokers) == \
        set(cluster.servers) == set(cluster.loadds) == {0, 1, 2, 3}
    for node_id, broker in cluster.brokers.items():
        assert broker.node_id == node_id
        assert broker.view is cluster.views[node_id]
    for node_id, server in cluster.servers.items():
        assert server.node.id == node_id
        assert server.peers is cluster.servers


def test_node_join_registers_dns_by_default():
    cluster = SWEBCluster(meiko_cs2(2))
    cluster.node_leave(1, update_dns=True)
    assert cluster.dns.addresses == [0]
    cluster.node_join(1)
    assert set(cluster.dns.addresses) == {0, 1}


def test_shared_policy_instance_across_servers():
    cluster = SWEBCluster(meiko_cs2(3), policy="sweb", start_loadd=False)
    policies = {id(s.policy) for s in cluster.servers.values()}
    assert len(policies) == 1


def test_custom_policy_object_accepted():
    from repro.core.policies import RoundRobinPolicy

    policy = RoundRobinPolicy()
    cluster = SWEBCluster(meiko_cs2(2), policy=policy, start_loadd=False)
    assert cluster.policy is policy


def test_total_redirections_sums_servers():
    cluster = SWEBCluster(meiko_cs2(2), policy="file-locality", seed=1)
    cluster.add_file("/a.gif", 1e5, home=1)
    cluster.run(until=cluster.fetch("/a.gif"))
    assert cluster.total_redirections() == \
        sum(s.redirects_issued for s in cluster.servers.values()) == 1


def test_now_cluster_nic_is_shared_bus_through_facade():
    cluster = SWEBCluster(sun_now(3), start_loadd=False)
    nics = {id(n.nic) for n in cluster.nodes}
    assert len(nics) == 1


def test_page_markup_starts_empty_and_fills():
    from repro.workload import html_site_corpus

    cluster = SWEBCluster(meiko_cs2(2), start_loadd=False)
    assert cluster.page_markup == {}
    html_site_corpus(2, 2, images_per_page=1).install(cluster)
    assert len(cluster.page_markup) == 2
