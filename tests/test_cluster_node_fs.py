"""Unit tests for Node, DistributedFileSystem and topology presets."""

import pytest

from repro.cluster import (
    DistributedFileSystem,
    FatTreeNetwork,
    Node,
    Disk,
    heterogeneous_now,
    meiko_cs2,
    sun_now,
)
from repro.sim import Simulator


def build_two_nodes(sim, disk_bw=5e6, net_bw=40e6, penalty=0.10):
    nodes = []
    for i in range(2):
        disk = Disk(sim, bandwidth=disk_bw, name=f"d{i}")
        nodes.append(Node(sim, i, cpu_speed=40e6, ram_bytes=32e6, disk=disk))
    net = FatTreeNetwork(sim, 2, bandwidth=net_bw, latency=0.0)
    fs = DistributedFileSystem(sim, nodes, net, remote_penalty=penalty)
    return nodes, net, fs


# --------------------------------------------------------------------- Node
def test_compute_charges_cpu_and_categories():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    node = Node(sim, 0, cpu_speed=40e6, ram_bytes=32e6, disk=disk)
    log = []

    def go():
        yield node.compute(2.8e6, category="preprocess")  # 70 ms at 40 Mops
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(0.07)]
    assert node.cpu_ops_by_category == {"preprocess": pytest.approx(2.8e6)}
    assert node.cpu_seconds_by_category() == {"preprocess": pytest.approx(0.07)}


def test_cpu_load_reflects_concurrency():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    node = Node(sim, 0, cpu_speed=1e6, ram_bytes=0, disk=disk)
    node.compute(1e6)
    node.compute(1e6)
    assert node.cpu_load() == 2.0


def test_node_leave_join():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    node = Node(sim, 0, cpu_speed=1e6, ram_bytes=0, disk=disk)
    assert node.alive
    node.leave()
    assert not node.alive
    node.join()
    assert node.alive


def test_node_validation():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    with pytest.raises(ValueError):
        Node(sim, 0, cpu_speed=0.0, ram_bytes=1.0, disk=disk)
    node = Node(sim, 0, cpu_speed=1.0, ram_bytes=1.0, disk=disk)
    with pytest.raises(ValueError):
        node.compute(-1.0)


# ------------------------------------------------------------------- DFS
def test_local_read_miss_then_hit_is_faster():
    sim = Simulator()
    nodes, _net, fs = build_two_nodes(sim)
    fs.add_file("/doc", 1.5e6, home=0)
    times = []

    def go():
        t0 = sim.now
        outcome = yield fs.read("/doc", at_node=0)
        times.append((sim.now - t0, outcome.source, outcome.remote))
        t1 = sim.now
        outcome = yield fs.read("/doc", at_node=0)
        times.append((sim.now - t1, outcome.source, outcome.remote))

    sim.spawn(go())
    sim.run()
    (t_miss, src1, rem1), (t_hit, src2, rem2) = times
    assert src1 == "disk" and src2 == "cache"
    assert not rem1 and not rem2
    assert t_miss == pytest.approx(0.3)          # 1.5 MB at 5 MB/s
    assert t_hit < t_miss / 5                    # memory ≫ disk


def test_remote_read_pays_nfs_penalty():
    sim = Simulator()
    nodes, _net, fs = build_two_nodes(sim, disk_bw=5e6, net_bw=40e6, penalty=0.10)
    fs.add_file("/doc", 1.5e6, home=0)
    times = []

    def go():
        t0 = sim.now
        outcome = yield fs.read("/doc", at_node=1)
        times.append((sim.now - t0, outcome))

    sim.spawn(go())
    sim.run()
    elapsed, outcome = times[0]
    assert outcome.remote and outcome.home == 0
    # disk 0.3 s + wire 1.65 MB at 40 MB/s ≈ 0.041 s
    assert elapsed == pytest.approx(0.3 + 1.65e6 / 40e6, rel=1e-3)


def test_remote_read_served_from_home_cache():
    sim = Simulator()
    nodes, _net, fs = build_two_nodes(sim)
    fs.add_file("/doc", 1.5e6, home=0)
    outcomes = []

    def go():
        outcomes.append((yield fs.read("/doc", at_node=0)))   # warm home cache
        outcomes.append((yield fs.read("/doc", at_node=1)))   # remote, cached

    sim.spawn(go())
    sim.run()
    assert outcomes[1].source == "cache" and outcomes[1].remote


def test_missing_file_raises():
    sim = Simulator()
    _nodes, _net, fs = build_two_nodes(sim)
    with pytest.raises(FileNotFoundError):
        fs.locate("/nope")
    assert not fs.exists("/nope")


def test_duplicate_and_invalid_files_rejected():
    sim = Simulator()
    _nodes, _net, fs = build_two_nodes(sim)
    fs.add_file("/a", 100.0, home=0)
    with pytest.raises(ValueError):
        fs.add_file("/a", 100.0, home=1)
    with pytest.raises(ValueError):
        fs.add_file("/b", -1.0, home=0)
    with pytest.raises(ValueError):
        fs.add_file("/c", 1.0, home=9)


def test_read_counters():
    sim = Simulator()
    _nodes, _net, fs = build_two_nodes(sim)
    fs.add_file("/a", 10.0, home=0)

    def go():
        yield fs.read("/a", at_node=0)
        yield fs.read("/a", at_node=1)

    sim.spawn(go())
    sim.run()
    assert fs.local_reads == 1 and fs.remote_reads == 1


# --------------------------------------------------------------- topologies
def test_meiko_preset_shape():
    spec = meiko_cs2()
    assert spec.num_nodes == 6
    assert spec.network_kind == "fat-tree"
    assert spec.nfs_penalty == pytest.approx(0.10)
    built = spec.build(Simulator())
    assert len(built.nodes) == 6
    assert built.nodes[0].cache.capacity == pytest.approx(32e6)
    # Per-node NICs on the Meiko are distinct objects.
    assert built.nodes[0].nic is not built.nodes[1].nic


def test_now_preset_shares_bus_as_nic():
    built = sun_now().build(Simulator())
    assert len(built.nodes) == 4
    # Ethernet: every node's NIC *is* the bus.
    assert built.nodes[0].nic is built.nodes[1].nic
    assert built.nodes[0].nic is built.network.bus


def test_with_nodes_resizes():
    spec = meiko_cs2().with_nodes(2)
    assert spec.num_nodes == 2
    with pytest.raises(ValueError):
        meiko_cs2().with_nodes(0)


def test_heterogeneous_now_speeds():
    spec = heterogeneous_now([40e6, 10e6])
    assert [ns.cpu_speed for ns in spec.nodes] == [40e6, 10e6]
    built = spec.build(Simulator())
    assert built.nodes[0].cpu_speed == 40e6
    assert built.nodes[1].cpu_speed == 10e6
