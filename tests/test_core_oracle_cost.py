"""Unit tests for the oracle and the multi-faceted cost model."""

import pytest

from repro.core import CostModel, CostParameters, LoadSnapshot, Oracle, OracleRule
from repro.core.oracle import TaskEstimate
from repro.web import CGIRegistry


def snap(node=0, cpu=0.0, disk=0.0, net=0.0, speed=40e6, disk_bw=5e6, t=0.0):
    return LoadSnapshot(node=node, cpu_load=cpu, disk_load=disk, net_load=net,
                        cpu_speed=speed, disk_bandwidth=disk_bw, timestamp=t)


# ------------------------------------------------------------------- Oracle
def test_oracle_static_file_estimate_scales_with_size():
    oracle = Oracle()
    small = oracle.characterize("/a.html", 1e3)
    big = oracle.characterize("/b.html", 1e6)
    assert big.cpu_ops > small.cpu_ops
    assert big.disk_bytes == 1e6
    assert big.output_bytes == 1e6
    assert not big.is_cgi


def test_oracle_rule_order_first_match_wins():
    rules = [
        OracleRule(pattern="/special/*", ops_per_byte=9.0, base_ops=100.0),
        OracleRule(pattern="*", ops_per_byte=1.0),
    ]
    oracle = Oracle(rules=rules)
    est = oracle.characterize("/special/x.bin", 10.0)
    assert est.cpu_ops == pytest.approx(100.0 + 90.0)
    est2 = oracle.characterize("/other.bin", 10.0)
    assert est2.cpu_ops == pytest.approx(10.0)


def test_oracle_always_has_catchall():
    oracle = Oracle(rules=[OracleRule(pattern="*.html", ops_per_byte=1.0)])
    est = oracle.characterize("/weird.xyz", 4.0)
    assert est.cpu_ops > 0


def test_oracle_cgi_estimate_from_registry():
    reg = CGIRegistry()
    reg.add("/cgi-bin/q", cpu_ops=7e6, output_bytes=2e4)
    oracle = Oracle(cgi_registry=reg)
    est = oracle.characterize("/cgi-bin/q", 0.0)
    assert est.is_cgi
    assert est.cpu_ops == 7e6
    assert est.output_bytes == 2e4
    assert est.disk_bytes == 0.0


def test_oracle_from_config():
    oracle = Oracle.from_config(
        {"rules": [{"pattern": "*.tif", "ops_per_byte": 0.5, "base_ops": 10}]})
    est = oracle.characterize("/m.tif", 100.0)
    assert est.cpu_ops == pytest.approx(10 + 50.0)


# --------------------------------------------------------------- Cost model
def test_t_redirection_zero_for_local():
    cm = CostModel(CostParameters(connect_time=5e-3,
                                  assumed_client_latency=None))
    assert cm.t_redirection(candidate=0, local=0, client_latency=0.04) == 0.0
    assert cm.t_redirection(candidate=1, local=0, client_latency=0.04) == \
        pytest.approx(2 * 0.04 + 5e-3)


def test_t_redirection_hand_coded_latency_overrides_measured():
    # "the estimate of the link latency … is hand-coded into the server".
    cm = CostModel(CostParameters(connect_time=5e-3,
                                  assumed_client_latency=0.03))
    assert cm.t_redirection(candidate=1, local=0, client_latency=0.4) == \
        pytest.approx(2 * 0.03 + 5e-3)


def test_t_data_local_vs_remote():
    cm = CostModel(net_bandwidth=40e6)
    est = TaskEstimate(cpu_ops=0, disk_bytes=1.5e6, output_bytes=1.5e6)
    local = cm.t_data(est, candidate=snap(node=0), home=snap(node=0),
                      file_home=0)
    assert local == pytest.approx(1.5e6 / 5e6)
    remote = cm.t_data(est, candidate=snap(node=1), home=snap(node=0),
                       file_home=0)
    # Remote: min(disk 5 MB/s, net 40 MB/s) = disk.
    assert remote == pytest.approx(1.5e6 / 5e6)


def test_t_data_degrades_with_disk_load():
    cm = CostModel()
    est = TaskEstimate(cpu_ops=0, disk_bytes=1e6, output_bytes=1e6)
    idle = cm.t_data(est, candidate=snap(node=0, disk=0), home=None, file_home=0)
    busy = cm.t_data(est, candidate=snap(node=0, disk=3), home=None, file_home=0)
    assert busy == pytest.approx(idle * 4)


def test_t_data_remote_limited_by_congested_network():
    cm = CostModel(net_bandwidth=10e6)
    est = TaskEstimate(cpu_ops=0, disk_bytes=1e6, output_bytes=1e6)
    # Candidate's port has 9 transfers in flight: 1 MB/s effective < disk.
    cost = cm.t_data(est, candidate=snap(node=1, net=9),
                     home=snap(node=0), file_home=0)
    assert cost == pytest.approx(1e6 / 1e6)


def test_t_cpu_scales_with_load_and_speed():
    cm = CostModel(CostParameters(fork_ops=0.0, preprocess_ops=0.0))
    est = TaskEstimate(cpu_ops=4e6, disk_bytes=0, output_bytes=0)
    idle = cm.t_cpu(est, snap(cpu=0.0, speed=40e6))
    assert idle == pytest.approx(0.1)
    loaded = cm.t_cpu(est, snap(cpu=3.0, speed=40e6))
    assert loaded == pytest.approx(0.4)
    slow = cm.t_cpu(est, snap(cpu=0.0, speed=10e6))
    assert slow == pytest.approx(0.4)


def test_t_cpu_remote_candidate_pays_refork_and_reparse():
    # A redirected request is forked and parsed again at the target, so a
    # non-local candidate carries those ops — the broker's hysteresis.
    cm = CostModel(CostParameters(fork_ops=4e5, preprocess_ops=2.4e6))
    est = TaskEstimate(cpu_ops=4e6, disk_bytes=0, output_bytes=0)
    local = cm.t_cpu(est, snap(cpu=0.0, speed=40e6), local=True)
    remote = cm.t_cpu(est, snap(cpu=0.0, speed=40e6), local=False)
    assert local == pytest.approx(0.1)
    assert remote == pytest.approx(0.1 + (4e5 + 2.4e6) / 40e6)


def test_t_net_disabled_by_default():
    cm = CostModel()
    est = TaskEstimate(cpu_ops=0, disk_bytes=0, output_bytes=1e6)
    assert cm.t_net(est) == 0.0
    cm2 = CostModel(CostParameters(use_net_term=True, internet_bandwidth=1e6))
    assert cm2.t_net(est) == pytest.approx(1.0)


def test_knockout_flags():
    params = CostParameters(use_data_term=False, use_cpu_term=False,
                            use_redirection_term=False)
    cm = CostModel(params)
    est = TaskEstimate(cpu_ops=1e9, disk_bytes=1e9, output_bytes=1e9)
    full = cm.estimate(est, snap(node=1, cpu=10, disk=10), snap(node=0),
                       file_home=0, local=0, client_latency=1.0)
    assert full.total == 0.0


def test_estimate_totals_terms():
    cm = CostModel()
    est = TaskEstimate(cpu_ops=1e6, disk_bytes=1e6, output_bytes=1e6)
    out = cm.estimate(est, snap(node=1), snap(node=0), file_home=0,
                      local=0, client_latency=0.002)
    assert out.total == pytest.approx(
        out.t_redirection + out.t_data + out.t_cpu + out.t_net)
    assert out.node == 1


def test_cost_parameters_validation():
    with pytest.raises(ValueError):
        CostParameters(delta=-0.1)
    with pytest.raises(ValueError):
        CostParameters(max_redirects=-1)
    with pytest.raises(ValueError):
        CostParameters(loadd_period=0.0)
