"""Tests for the trace exporters (docs/TRACING.md).

Three contracts:

* **Schema** — the Chrome ``trace_event`` document carries exactly the
  keys chrome://tracing and Perfetto need, with the repo's lane
  convention (pid 0 = client/WAN, pid ``node+1`` = node lanes, tid =
  request id).
* **Bit-stability** — two identical seeded runs render byte-identical
  JSON (the property ``serve --trace-requests`` relies on).
* **Observation-only tracing** — attaching a tracer to a golden
  determinism scenario must leave every fingerprint field unchanged.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.obs import (
    CLIENT_PID,
    Tracer,
    chrome_trace,
    flame_rollup,
    render_chrome_trace,
)


def _sample_tracer():
    """A small hand-built tracer: one client-side and one node span."""
    tracer = Tracer()
    root = tracer.begin(3, "/hot/doc.gif", "ucsb", 10.0)
    dns = tracer.start(root, "dns", 10.0, "network")
    tracer.finish(dns, 10.2, cache_hit=False)
    fulfill = tracer.start(root, "fulfill", 10.3, "data_transfer", node=2,
                           source="disk")
    tracer.finish(fulfill, 10.8)
    tracer.finish(root, 11.0)
    return tracer


# -- schema ----------------------------------------------------------------

def test_chrome_trace_event_schema():
    doc = chrome_trace(_sample_tracer().traces())
    assert doc["displayTimeUnit"] == "ms"
    assert "otherData" in doc
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 3
    for event in spans:
        assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"}
        assert event["tid"] == 3                    # tid = request id
        assert event["args"]["stage"] == event["cat"]
    by_name = {e["name"]: e for e in spans}
    # lane convention: client/WAN spans on pid 0, node spans on node+1
    assert by_name["request"]["pid"] == CLIENT_PID
    assert by_name["dns"]["pid"] == CLIENT_PID
    assert by_name["fulfill"]["pid"] == 2 + 1
    # sim seconds exported as microseconds
    assert by_name["request"]["ts"] == pytest.approx(10.0 * 1e6)
    assert by_name["request"]["dur"] == pytest.approx(1.0 * 1e6)
    assert by_name["fulfill"]["args"]["source"] == "disk"
    # every used pid gets a process_name metadata event
    assert {e["pid"] for e in meta} == {CLIENT_PID, 3}
    labels = {e["pid"]: e["args"]["name"] for e in meta}
    assert labels[CLIENT_PID] == "client/WAN"
    assert labels[3] == "node 2"


def test_open_spans_skipped_and_long_spans_clipped_to_root():
    tracer = Tracer()
    root = tracer.begin(0, "/x", "c", 0.0)
    tracer.start(root, "open", 0.5, "analysis")      # never closed
    late = tracer.start(root, "late", 1.0, "data_transfer", node=0)
    tracer.finish(root, 2.0)                         # root closes first...
    tracer.finish(late, 5.0)                         # ...handler runs on
    spans = [e for e in chrome_trace(tracer.traces())["traceEvents"]
             if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"request", "late"}
    by_name = {e["name"]: e for e in spans}
    # clipped into the root window: 1.0..2.0, not 1.0..5.0
    assert by_name["late"]["dur"] == pytest.approx(1.0 * 1e6)


def test_render_round_trips_and_is_sorted_json():
    text = render_chrome_trace(_sample_tracer().traces())
    assert text.endswith("\n")
    doc = json.loads(text)
    assert doc == chrome_trace(_sample_tracer().traces())
    # canonical form: re-dumping with the same options reproduces it
    assert json.dumps(doc, sort_keys=True, indent=1) + "\n" == text


# -- flame rollup ----------------------------------------------------------

def test_flame_rollup_lists_paths_with_shares():
    text = flame_rollup(_sample_tracer().traces())
    lines = text.splitlines()
    assert "span" in lines[0]
    assert any(line.endswith("request") for line in lines)
    # children are indented under the root and sorted by total time
    assert any(line.endswith("  fulfill") for line in lines)
    assert any(line.endswith("  dns") for line in lines)
    assert lines.index([l for l in lines if l.endswith("  fulfill")][0]) < \
        lines.index([l for l in lines if l.endswith("  dns")][0])
    assert "100.0%" in [l for l in lines if l.endswith("request")][0]


def test_flame_rollup_depth_cap_and_open_spans():
    tracer = _sample_tracer()
    open_root = tracer.begin(9, "/open", "c", 0.0)
    tracer.start(open_root, "halfway", 0.1, "analysis")   # never closed
    tracer.finish(open_root, 1.0)
    capped = flame_rollup(tracer.traces(), max_depth=1)
    assert "request" in capped
    assert "fulfill" not in capped      # children beyond the cap dropped
    full = flame_rollup(tracer.traces())
    assert "halfway" not in full        # open spans never counted


def test_flame_rollup_empty():
    assert flame_rollup([]) == "(no traces collected)\n"
    assert flame_rollup([], max_depth=1) == "(no traces collected)\n"


# -- bit-stability across identical runs -----------------------------------

def _traced_run(seed=4):
    from repro.experiments.runner import run_scenario
    from repro.workload import build_scenario

    scenario = replace(
        build_scenario("table1", rps=6, duration=3.0, nodes=3, seed=seed),
        tracer=Tracer())
    run_scenario(scenario)
    return scenario.tracer


def test_identical_seeded_runs_render_identical_json():
    first = render_chrome_trace(_traced_run().traces())
    second = render_chrome_trace(_traced_run().traces())
    assert len(first) > 1000
    assert first == second
    assert flame_rollup(_traced_run().traces()) == \
        flame_rollup(_traced_run().traces())


test_identical_seeded_runs_render_identical_json.__coverage_gate_skip__ = True


# -- tracing is observation-only -------------------------------------------

def test_tracer_attached_run_keeps_golden_fingerprint():
    """det-meiko with a tracer attached matches the golden fingerprint.

    The strongest no-observer-effect statement the repo can make:
    instrument everything, then require every record, counter and
    kernel-trace hash to be byte-for-byte what the un-instrumented
    golden run produced.
    """
    from repro.experiments.runner import run_scenario
    from tests.test_determinism import GOLDEN, _record_line, _scenarios

    scenario = replace(_scenarios()[0], tracer=Tracer())
    assert scenario.name == "det-meiko"
    result = run_scenario(scenario)
    metrics = result.metrics
    trace_text = scenario.trace.render()
    current = {
        "records": [_record_line(r) for r in metrics.records],
        "counters": {k: v for k, v in
                     sorted(metrics.counters.as_dict().items())},
        "served_by": {str(k): v for k, v in
                      sorted(metrics.served_by_histogram().items())},
        "finished_at": repr(result.finished_at),
        "trace_records": len(scenario.trace),
        "trace_sha256": hashlib.sha256(trace_text.encode()).hexdigest(),
    }
    golden = json.loads(GOLDEN.read_text())["det-meiko"]
    for key in golden:
        assert current[key] == golden[key], (
            f"det-meiko.{key} drifted when a tracer was attached — "
            f"tracing must be observation-only")
    # and the tracer did actually collect the run
    assert len(scenario.tracer) == len(metrics.records)
    assert all(t.root is not None for t in scenario.tracer.traces())


test_tracer_attached_run_keeps_golden_fingerprint.__coverage_gate_skip__ = (
    True)
