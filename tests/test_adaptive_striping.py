"""Tests for the adaptive oracle and striped files."""

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.core import AdaptiveOracle, Oracle, OracleRule
from repro.web import CGIRegistry


# ------------------------------------------------------------------ oracle
def test_adaptive_starts_from_static_table():
    oracle = AdaptiveOracle(rules=[OracleRule(pattern="*", ops_per_byte=2.0)])
    est = oracle.characterize("/x.gif", 100.0)
    assert est.cpu_ops == pytest.approx(200.0)


def test_adaptive_learns_after_min_observations():
    oracle = AdaptiveOracle(rules=[OracleRule(pattern="*", ops_per_byte=0.1)],
                            alpha=1.0, min_observations=3)
    for _ in range(2):
        oracle.observe("/m.gif", 1000.0, 6000.0)   # true rate: 6 ops/byte
    # Not yet trusted.
    assert oracle.characterize("/m.gif", 1000.0).cpu_ops == pytest.approx(100.0)
    oracle.observe("/m.gif", 1000.0, 6000.0)
    est = oracle.characterize("/other.gif", 1000.0)   # same class (.gif)
    assert est.cpu_ops == pytest.approx(6000.0)


def test_adaptive_ewma_converges():
    oracle = AdaptiveOracle(rules=[OracleRule(pattern="*", ops_per_byte=0.0)],
                            alpha=0.5, min_observations=1)
    for _ in range(20):
        oracle.observe("/a.html", 100.0, 400.0)
    stats = oracle.learned("/a.html")
    assert stats is not None
    assert stats.ops_per_byte == pytest.approx(4.0, rel=1e-6)
    assert stats.observations == 20


def test_adaptive_classes_are_per_extension():
    oracle = AdaptiveOracle(alpha=1.0, min_observations=1)
    oracle.observe("/a.gif", 100.0, 900.0)
    assert oracle.learned("/b.gif") is not None
    assert oracle.learned("/b.html") is None


def test_adaptive_ignores_cgi_and_bad_samples():
    reg = CGIRegistry()
    oracle = AdaptiveOracle(cgi_registry=reg, min_observations=1)
    oracle.observe("/cgi-bin/q", 100.0, 1e6)
    assert oracle.learned("/cgi-bin/q") is None
    oracle.observe("/x.gif", 0.0, 100.0)      # zero-size: ignored
    assert oracle.learned("/x.gif") is None


def test_adaptive_validation():
    with pytest.raises(ValueError):
        AdaptiveOracle(alpha=0.0)
    with pytest.raises(ValueError):
        AdaptiveOracle(min_observations=0)


def test_server_feeds_adaptive_oracle():
    # A cluster built with a badly mis-specified adaptive oracle corrects
    # itself from served requests.
    oracle = AdaptiveOracle(rules=[OracleRule(pattern="*", ops_per_byte=0.01)],
                            alpha=0.5, min_observations=2)
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=1, oracle=oracle)
    cluster.add_file("/big.gif", 1e6, home=0)
    for _ in range(3):
        cluster.run(until=cluster.fetch("/big.gif"))
    stats = oracle.learned("/big.gif")
    assert stats is not None
    # Learned rate equals the server's true send cost (6 ops/byte).
    assert stats.ops_per_byte == pytest.approx(
        cluster.params.send_ops_per_byte, rel=1e-6)


# ---------------------------------------------------------------- striping
def test_striped_read_uses_all_disks_in_parallel():
    cluster = SWEBCluster(meiko_cs2(4), policy="round-robin", seed=1,
                          start_loadd=False)
    cluster.add_file("/whole.bin", 4e6, home=0)
    cluster.add_striped_file("/striped.bin", 4e6, stripes=[0, 1, 2, 3])

    def read_time(path, node):
        times = []

        def go():
            t0 = cluster.sim.now
            yield cluster.fs.read(path, at_node=node)
            times.append(cluster.sim.now - t0)

        cluster.sim.spawn(go())
        cluster.run(until=cluster.sim.now + 60.0)
        return times[0]

    t_whole = read_time("/whole.bin", 0)
    # Clear caches so the striped read hits disks too.
    for n in cluster.nodes:
        n.cache.clear()
    t_striped = read_time("/striped.bin", 0)
    # 4-way stripe: disk time cut ~4x (plus a little fabric time).
    assert t_striped < t_whole / 2


def test_striped_file_cached_at_reader():
    cluster = SWEBCluster(meiko_cs2(3), policy="round-robin", seed=1,
                          start_loadd=False)
    cluster.add_striped_file("/s.bin", 3e6, stripes=[0, 1, 2])
    outcomes = []

    def go():
        outcomes.append((yield cluster.fs.read("/s.bin", at_node=1)))
        outcomes.append((yield cluster.fs.read("/s.bin", at_node=1)))

    cluster.sim.spawn(go())
    cluster.run(until=60.0)
    assert outcomes[0].source == "disk"
    assert outcomes[1].source == "cache"


def test_striped_locate_reports_primary_home():
    cluster = SWEBCluster(meiko_cs2(3), seed=1, start_loadd=False)
    cluster.add_striped_file("/s.bin", 3e6, stripes=[2, 0])
    meta = cluster.fs.locate("/s.bin")
    assert meta.home == 2
    assert meta.is_striped
    assert meta.stripes == (2, 0)


def test_striped_served_end_to_end():
    cluster = SWEBCluster(meiko_cs2(4), policy="sweb", seed=1)
    cluster.add_striped_file("/map.tif", 4e6, stripes=[0, 1, 2, 3])
    rec = cluster.run(until=cluster.fetch("/map.tif"))
    assert rec.ok
    assert rec.size == 0.0 or rec.status == 200  # served fine


def test_striping_validation():
    cluster = SWEBCluster(meiko_cs2(3), seed=1, start_loadd=False)
    with pytest.raises(ValueError):
        cluster.add_striped_file("/s", 1e6, stripes=[])
    with pytest.raises(ValueError):
        cluster.add_striped_file("/s", 1e6, stripes=[0, 0])
    with pytest.raises(ValueError):
        cluster.add_striped_file("/s", 1e6, stripes=[0, 9])
    with pytest.raises(ValueError):
        cluster.add_striped_file("/s", -1.0, stripes=[0])
    cluster.add_striped_file("/s", 1e6, stripes=[0, 1])
    with pytest.raises(ValueError):
        cluster.add_striped_file("/s", 1e6, stripes=[0, 1])
