"""Fault injection and graceful degradation (repro.faults + X9)."""

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.core.costmodel import CostParameters
from repro.faults import Fault, FaultPlan, FaultSpecError


# ------------------------------------------------------------ plan parsing
def test_parse_every_kind():
    plan = FaultPlan.parse("crash:n2@30,partition:10-20,slowdisk:n1@5-25x4,"
                           "mute:n3@10-30,corrupt:n2@10-30x0")
    assert [f.kind for f in plan] == ["crash", "partition", "slowdisk",
                                     "mute", "corrupt"]
    crash, part, slow, mute, corrupt = plan
    assert crash.node == 2 and crash.start == 30.0 and crash.end is None
    assert part.groups == () and (part.start, part.end) == (10.0, 20.0)
    assert slow.factor == 4.0 and (slow.start, slow.end) == (5.0, 25.0)
    assert mute.node == 3
    assert corrupt.factor == 0.0


def test_parse_explicit_partition_groups():
    plan = FaultPlan.parse("partition:n0+n1|n2@10-20")
    (fault,) = plan
    assert fault.groups == ((0, 1), (2,))


def test_parse_crash_with_restart():
    (fault,) = FaultPlan.parse("crash:n0@30-50")
    assert (fault.start, fault.end) == (30.0, 50.0)


def test_corrupt_factor_defaults_to_zero():
    (fault,) = FaultPlan.parse("corrupt:n1@5")
    assert fault.factor == 0.0 and fault.end is None


@pytest.mark.parametrize("spec", [
    "",                        # empty
    "fire:n1@3",               # unknown kind
    "crash:n1",                # missing window
    "crash:@5",                # missing node
    "crash:node1@5",           # bad node syntax
    "crash:n1@ten",            # bad time
    "crash:n1@5-5",            # empty window
    "partition:20-10",         # reversed window
    "partition:5",             # partition needs an end
    "slowdisk:n1@5-25",        # slowdisk needs a factor
    "slowdisk:n1@5-25x0.5",    # factor < 1
    "slowdisk:n1@5-25xfast",   # unparseable factor
    "corrupt:n1@5-25x-1",      # negative corruption factor
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


def test_builders_match_parse():
    built = (FaultPlan().crash(2, at=30.0)
             .partition(10.0, 20.0)
             .slow_disk(1, 5.0, 25.0, factor=4.0))
    parsed = FaultPlan.parse("crash:n2@30,partition:10-20,slowdisk:n1@5-25x4")
    assert built.faults == parsed.faults
    assert built.describe() == parsed.describe()


def test_validate_rejects_out_of_range_nodes():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("crash:n9@5").validate(4)
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("partition:n0|n9@5-10").validate(4)
    FaultPlan.parse("crash:n3@5").validate(4)   # in range: fine


def test_fault_is_plain_data():
    fault = Fault("mute", start=1.0, end=2.0, node=0)
    assert "mute n0" in fault.describe()
    with pytest.raises(FaultSpecError):
        Fault("partition", start=1.0, node=0)   # partition has no node


# ----------------------------------------------------------- the injector
def test_injector_applies_and_reverts_everything():
    cluster = SWEBCluster(meiko_cs2(3), policy="sweb", seed=1)
    plan = (FaultPlan().crash(0, at=1.0, restart_at=2.0)
            .slow_disk(1, 1.0, 3.0, factor=4.0)
            .mute(2, 1.0, end=2.5)
            .corrupt(2, 3.0, end=4.0, factor=0.5))
    injector = cluster.attach_faults(plan)
    sim = cluster.sim

    cluster.run(until=sim.timeout(1.5))         # mid-window
    assert cluster.nodes[0].crashed and not cluster.nodes[0].alive
    assert cluster.nodes[1].disk.degrade_factor == 4.0
    assert cluster.loadds[2].muted

    cluster.run(until=sim.timeout(5.0))         # past every end time
    assert cluster.nodes[0].alive and not cluster.nodes[0].crashed
    assert cluster.nodes[1].disk.degrade_factor == 1.0
    assert not cluster.loadds[2].muted
    assert cluster.loadds[2].corrupt_factor is None

    assert len(injector.log) == 8               # 4 applies + 4 reverts
    assert injector.applied("crash") == 1
    for kind in ("crash", "slowdisk", "mute", "corrupt"):
        times = [r.time for r in injector.log if r.fault.kind == kind]
        assert times == sorted(times)           # apply precedes revert
    assert "crash n0" in injector.report()


def test_attach_faults_accepts_spec_strings():
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=1)
    injector = cluster.attach_faults("mute:n1@0.5-1.0")
    cluster.run(until=cluster.sim.timeout(2.0))
    assert injector.applied("mute") == 1
    with pytest.raises(FaultSpecError):
        cluster.attach_faults("crash:n7@1")     # validated against 2 nodes


def test_partition_heals_and_views_reconverge():
    cluster = SWEBCluster(meiko_cs2(4), policy="sweb", seed=1)
    injector = cluster.attach_faults("partition:2-6")
    sim = cluster.sim

    cluster.run(until=sim.timeout(4.0))         # t=4: split in halves
    assert cluster.network.partitioned
    assert cluster.network.reachable(0, 1)
    assert not cluster.network.reachable(0, 3)

    cluster.run(until=sim.timeout(5.0))         # t=9: healed at 6
    assert not cluster.network.partitioned
    assert cluster.network.reachable(0, 3)
    assert cluster.network.transfers_lost > 0   # loadd heartbeats were lost
    # heal triggers an immediate re-announce, so every view is fresh again
    assert set(cluster.availability(0).values()) == {"available"}
    assert [r.action for r in injector.log] == ["apply", "revert"]


# ----------------------------------------------- graceful degradation: broker
def test_stale_fallback_engages_and_disengages():
    params = CostParameters(graceful_degradation=True)
    cluster = SWEBCluster(meiko_cs2(3), params=params, seed=1)
    cluster.add_file("/a.html", 2e4, home=1)
    sim = cluster.sim
    for daemon in cluster.loadds.values():
        daemon.muted = True                     # total heartbeat blackout

    # Engage: every peer snapshot is older than fallback_staleness.
    cluster.run(until=sim.timeout(params.fallback_staleness + 1.0))
    rec = cluster.run(until=cluster.fetch("/a.html"))
    assert rec.ok
    assert cluster.total_fallbacks() >= 1
    assert not rec.redirected                   # fallback serves locally

    # Disengage: heartbeats resume, views refresh, brokers trust them again.
    for daemon in cluster.loadds.values():
        daemon.muted = False
        daemon.broadcast_now()
    cluster.run(until=sim.timeout(0.5))
    before = cluster.total_fallbacks()
    rec = cluster.run(until=cluster.fetch("/a.html"))
    assert rec.ok
    assert cluster.total_fallbacks() == before


def test_faithful_mode_never_falls_back():
    cluster = SWEBCluster(meiko_cs2(3), seed=1)   # defaults: graceful off
    cluster.add_file("/a.html", 2e4, home=1)
    sim = cluster.sim
    for daemon in cluster.loadds.values():
        daemon.muted = True
    cluster.run(until=sim.timeout(30.0))        # far beyond any staleness
    rec = cluster.run(until=cluster.fetch("/a.html"))
    assert rec.end is not None
    assert cluster.total_fallbacks() == 0


def test_suspected_node_is_not_a_redirect_target():
    params = CostParameters(graceful_degradation=True)
    cluster = SWEBCluster(meiko_cs2(3), params=params, seed=1)
    sim = cluster.sim
    cluster.loadds[2].muted = True              # node 2 stops heartbeating
    cluster.run(until=sim.timeout(params.suspicion_timeout + 1.0))
    view = cluster.availability(0)
    assert view[0] == "available" and view[1] == "available"
    assert view[2] == "suspect"
    assert cluster.views[0].suspected(2, sim.now)
    assert not cluster.views[0].suspected(0, sim.now)   # never self-suspect


# ----------------------------------------------- graceful degradation: client
def test_crash_resets_inflight_connections():
    # Paper-faithful mode: a crash mid-transfer fails the request fast
    # (TCP reset analog) instead of stalling it to the 120 s timeout.
    cluster = SWEBCluster(meiko_cs2(1), policy="round-robin", seed=1)
    cluster.add_file("/big.bin", 5e6, home=0)
    sim = cluster.sim
    proc = cluster.fetch("/big.bin")

    def killer():
        yield sim.timeout(0.3)
        cluster.node_crash(0)

    sim.spawn(killer())
    rec = cluster.run(until=proc)
    assert rec.dropped and rec.drop_reason == "reset"
    assert cluster.servers[0].connections_reset == 1
    assert rec.response_time < 1.0              # failed fast, no 120 s stall


def test_crash_during_redirect_recovers_with_retry():
    # File-locality redirects to node 1; node 1 crashes while the 302 is
    # in flight.  Paper-faithful drops ("refused"); graceful retries the
    # connection elsewhere and completes, redirect rule intact.
    def run(graceful: bool):
        params = CostParameters(graceful_degradation=graceful)
        cluster = SWEBCluster(meiko_cs2(2), policy="file-locality",
                              params=params, seed=1)
        cluster.add_file("/on1.gif", 1.5e6, home=1)
        sim = cluster.sim
        proc = cluster.fetch("/on1.gif")

        def killer():
            yield sim.timeout(0.05)
            cluster.node_crash(1)

        sim.spawn(killer())
        return cluster.run(until=proc)

    rec = run(graceful=False)
    assert rec.dropped and rec.drop_reason == "refused"
    assert rec.redirected and rec.retries == 0

    rec = run(graceful=True)
    assert rec.ok and rec.redirected
    assert rec.retries >= 1


def test_retry_backoff_is_bounded():
    params = CostParameters(graceful_degradation=True,
                            client_retries=2, retry_backoff=0.2)
    cluster = SWEBCluster(meiko_cs2(2), params=params, seed=1)
    cluster.add_file("/x.html", 1e3, home=0)
    for n in (0, 1):
        cluster.node_crash(n)                   # nowhere to retry to
    rec = cluster.run(until=cluster.fetch("/x.html"))
    assert rec.dropped and rec.drop_reason == "refused"
    assert rec.retries == params.client_retries  # exhausted, then stopped
    assert cluster.metrics.counters["retries"] == params.client_retries
    # the two backoffs (0.2 + 0.4) were actually waited, and the request
    # still failed fast — far from the 120 s client timeout
    assert 0.6 <= rec.response_time < 5.0


def test_retries_off_in_faithful_mode():
    cluster = SWEBCluster(meiko_cs2(2), seed=1)
    cluster.add_file("/x.html", 1e3, home=0)
    cluster.node_crash(0)
    cluster.node_crash(1)
    rec = cluster.run(until=cluster.fetch("/x.html"))
    assert rec.dropped and rec.retries == 0
    assert cluster.metrics.counters["retries"] == 0


# --------------------------------------------------------------- X9 end to end
def test_x9_graceful_strictly_beats_faithful():
    from repro.experiments.faults import run_faulted

    faithful = run_faulted(graceful=False)
    graceful = run_faulted(graceful=True)
    # identical workload, identical fault plan: degradation must pay off
    assert graceful.drop_rate < faithful.drop_rate
    assert graceful.fallback_count > 0 and faithful.fallback_count == 0
    assert graceful.retry_count > 0 and faithful.retry_count == 0
    assert faithful.reset_count > 0             # the crash actually bit
    # the at-most-once redirect rule survives degradation
    assert all(r.phases.get("redirection", 0.0) >= 0.0
               for r in graceful.metrics.records)
    assert graceful.injector is not None
    assert graceful.injector.applied("crash") == 1


def test_scenario_faults_field_accepts_plan_objects():
    from repro.experiments.faults import run_faulted

    plan = FaultPlan().mute(0, 1.0, end=2.0)
    result = run_faulted(graceful=False, duration=4.0, rps=4, plan=plan)
    assert result.injector is not None
    assert result.injector.applied("mute") == 1
