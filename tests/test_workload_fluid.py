"""Tests for the aggregate (fluid) client-population model.

The fluid model (``repro.workload.fluid``, docs/SCALING.md) is the
million-request path: these tests pin its determinism contract
(bit-identical fingerprints for identical cells, independent of batch
size and record retention), the array-backed record semantics, the
queue model's basic physics, and the registry it publishes into.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.workload import (
    FluidRecords,
    FluidRequest,
    FluidScenario,
    run_fluid,
)


def _small(**overrides) -> FluidScenario:
    defaults = dict(name="t", nodes=3, rate=500.0, n_requests=2_000,
                    n_paths=64, hot_set=8, seed=11, batch=256)
    defaults.update(overrides)
    return FluidScenario(**defaults)


# -- determinism -----------------------------------------------------------

def test_identical_cells_fingerprint_identically():
    a = run_fluid(_small())
    b = run_fluid(_small())
    assert a.fingerprint == b.fingerprint
    assert a.snapshot() == b.snapshot()
    assert a.served == b.served
    assert a.finished_at == b.finished_at


def test_fingerprint_independent_of_record_retention():
    """Whether records are kept must not change outcomes — the digest
    covers what happened, not what was stored."""
    full = run_fluid(_small())
    lean = run_fluid(_small(), keep_records=False)
    assert full.fingerprint == lean.fingerprint
    assert lean.records is None and full.records is not None


def test_batch_is_part_of_the_cell_identity():
    """``batch`` regroups the arrival cumsum, which moves float
    rounding at the ULP level — so it is a scenario field, hashed into
    the cell identity, not a free execution knob (docs/SCALING.md)."""
    a = run_fluid(_small(), keep_records=False)
    b = run_fluid(_small(batch=37), keep_records=False)
    assert a.scenario.batch != b.scenario.batch
    assert a.n_requests == b.n_requests
    # outcomes agree statistically even though bits may differ
    assert a.redirected == pytest.approx(b.redirected, rel=0.2, abs=5)


def test_seed_and_config_changes_change_the_fingerprint():
    base = run_fluid(_small(), keep_records=False)
    for other in (_small(seed=12), _small(rate=600.0), _small(nodes=4),
                  _small(alpha=None), _small(hot_set=0)):
        assert run_fluid(other, keep_records=False).fingerprint \
            != base.fingerprint


# -- records ---------------------------------------------------------------

def test_records_are_array_backed_and_consistent():
    result = run_fluid(_small())
    records = result.records
    assert isinstance(records, FluidRecords)
    assert len(records) == result.n_requests
    first = records[0]
    assert isinstance(first, FluidRequest)
    assert first.arrival >= 0.0 and first.latency > 0.0
    assert "FluidRequest" in repr(first)
    seen_nodes = set()
    redirected = 0
    last_arrival = -1.0
    for req in records:
        assert req.arrival >= last_arrival  # Poisson stream is ordered
        last_arrival = req.arrival
        assert 0 <= req.node < result.scenario.nodes
        assert 0 <= req.path_rank < result.scenario.n_paths
        seen_nodes.add(req.node)
        redirected += req.redirected
    assert seen_nodes == set(range(result.scenario.nodes))
    assert redirected == result.redirected


# -- queue physics ---------------------------------------------------------

def test_served_counts_and_latency_floor():
    result = run_fluid(_small())
    assert sum(result.served) == result.n_requests
    # every latency includes at least the fixed CPU cost
    assert min(result.records.latencies) >= result.scenario.t_cpu
    assert result.finished_at > 0.0
    # the batch-horizon design means a handful of kernel events total
    assert result.event_count < result.n_requests / 10


def test_overload_grows_latency():
    """Offered load far beyond capacity must queue: mean latency well
    above the lightly-loaded run's."""
    light = run_fluid(_small(rate=200.0), keep_records=False)
    heavy = run_fluid(_small(rate=50_000.0), keep_records=False)
    mean = lambda r: (r.registry.histogram("fluid.latency_s").total
                      / r.n_requests)
    assert mean(heavy) > 10 * mean(light)


def test_single_node_never_redirects():
    result = run_fluid(_small(nodes=1), keep_records=False)
    assert result.redirected == 0
    assert result.served == [result.n_requests]


# -- registry --------------------------------------------------------------

def test_registry_publication():
    registry = MetricsRegistry()
    result = run_fluid(_small(), registry=registry)
    snap = registry.snapshot()
    assert snap["counters"]["fluid.requests"] == 2_000
    assert snap["counters"]["fluid.redirected"] == result.redirected
    per_node = [snap["counters"][f"fluid.served.n{i}"] for i in range(3)]
    assert per_node == result.served
    hist = snap["histograms"]["fluid.latency_s"]
    assert hist["count"] == 2_000
    assert hist["min"] == min(result.records.latencies)
    assert hist["max"] == max(result.records.latencies)
    assert hist["total"] == pytest.approx(sum(result.records.latencies))
    assert "mean_rt" in result.summary_line()


# -- validation ------------------------------------------------------------

def test_validate_rejects_malformed_cells():
    for bad in (dict(nodes=0), dict(rate=0.0), dict(n_requests=0),
                dict(n_paths=0), dict(hot_set=65), dict(batch=0)):
        with pytest.raises(ValueError):
            run_fluid(_small(**bad))


def test_with_seed_returns_new_cell():
    base = _small()
    other = base.with_seed(99)
    assert other.seed == 99 and base.seed == 11
    assert other.nodes == base.nodes
