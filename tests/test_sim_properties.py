"""Property-based tests (hypothesis) for the simulation kernel.

Invariants checked:

* event processing is globally time-ordered;
* identical schedules replay identically (determinism);
* the fair-share server conserves work and is never idle while work is
  pending (work conservation);
* a FIFO Resource never exceeds capacity and grants in arrival order;
* TimeWeighted.average equals a brute-force integral.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sim import FairShareServer, Resource, Simulator, TimeWeighted

delays = st.lists(st.floats(min_value=0.0, max_value=50.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=20)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_events_fire_in_time_order(ds):
    sim = Simulator()
    fired = []

    def proc(d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in ds:
        sim.spawn(proc(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
@settings(max_examples=40, deadline=None)
def test_replay_determinism(ds):
    def run_once():
        sim = Simulator()
        fired = []

        def proc(tag, d):
            yield sim.timeout(d)
            fired.append((sim.now, tag))

        for i, d in enumerate(ds):
            sim.spawn(proc(i, d))
        sim.run()
        return fired, sim.event_count

    assert run_once() == run_once()


work_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),   # submit time
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False), # work
    ),
    min_size=1, max_size=12,
)


@given(work_lists, st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_fair_share_conserves_work(jobs, rate):
    sim = Simulator()
    srv = FairShareServer(sim, rate=rate)
    completions = []

    def go(when, work):
        yield sim.timeout(when)
        job = srv.submit(work)
        yield job.done
        completions.append(sim.now)

    for when, work in jobs:
        sim.spawn(go(when, work))
    sim.run()
    total_work = sum(w for _, w in jobs)
    assert len(completions) == len(jobs)
    assert srv.njobs == 0
    assert math.isclose(srv.work_completed, total_work, rel_tol=1e-6)
    # Work conservation: busy time == total work / rate (single server,
    # never idle while jobs are present).
    assert math.isclose(srv.busy_integral(), total_work / rate, rel_tol=1e-6)


@given(work_lists, st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_fair_share_completion_never_before_unloaded_time(jobs, rate):
    """No job can finish faster than running alone at full rate."""
    sim = Simulator()
    srv = FairShareServer(sim, rate=rate)
    spans = []

    def go(when, work):
        yield sim.timeout(when)
        start = sim.now
        job = srv.submit(work)
        yield job.done
        spans.append((sim.now - start, work / rate))

    for when, work in jobs:
        sim.spawn(go(when, work))
    sim.run()
    for elapsed, floor in spans:
        assert elapsed >= floor - 1e-6


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=15),
)
@settings(max_examples=60, deadline=None)
def test_resource_capacity_invariant(capacity, holds):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    grant_order = []
    max_in_use = 0

    def user(tag, hold):
        nonlocal max_in_use
        with res.request() as req:
            yield req
            grant_order.append(tag)
            max_in_use = max(max_in_use, res.count)
            assert res.count <= capacity
            yield sim.timeout(hold)

    for i, hold in enumerate(holds):
        sim.spawn(user(i, hold))
    sim.run()
    assert max_in_use <= capacity
    # All requests arrive at t=0 in spawn order; FIFO grants preserve it.
    assert grant_order == list(range(len(holds)))


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.001, max_value=10.0),
                  st.floats(min_value=-5.0, max_value=5.0)),
        min_size=1, max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_time_weighted_average_matches_bruteforce(steps):
    tw = TimeWeighted(initial=0.0, at=0.0)
    t = 0.0
    pieces = []  # (t0, t1, value)
    value = 0.0
    for dt, v in steps:
        pieces.append((t, t + dt, value))
        t += dt
        value = v
        tw.update(t, v)
    t_end = t + 1.0
    pieces.append((t, t_end, value))
    integral = sum((b - a) * v for a, b, v in pieces)
    expected = integral / t_end
    assert math.isclose(tw.average(0.0, t_end), expected, rel_tol=1e-9, abs_tol=1e-9)
