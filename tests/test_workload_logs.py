"""Tests for Common Log Format writing, parsing and replay."""

from datetime import datetime, timezone

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.experiments.runner import Scenario, run_scenario
from repro.sim import RandomStreams
from repro.workload import (
    burst_workload,
    parse_clf,
    uniform_corpus,
    uniform_sampler,
    workload_from_clf,
    write_clf,
)
from repro.workload.logs import CLFEntry, DEFAULT_EPOCH, format_clf

SAMPLE = ('alpha.rutgers.edu - - [15/Apr/1996:09:00:01 +0000] '
          '"GET /maps/x.gif HTTP/1.0" 200 1500000\n'
          'beta.ucsb.edu - - [15/Apr/1996:09:00:02 +0000] '
          '"GET /index.html HTTP/1.0" 404 0\n')


def test_format_and_parse_roundtrip():
    entry = CLFEntry(host="h.example.edu",
                     time=datetime(1996, 4, 15, 9, 0, 5, tzinfo=timezone.utc),
                     method="GET", path="/a.html", status=200, nbytes=123)
    line = format_clf(entry)
    parsed = parse_clf(line)
    assert len(parsed) == 1
    back = parsed[0]
    assert back.host == entry.host
    assert back.path == entry.path
    assert back.status == 200 and back.nbytes == 123
    assert back.ok


def test_parse_sample_log():
    entries = parse_clf(SAMPLE)
    assert len(entries) == 2
    assert entries[0].path == "/maps/x.gif"
    assert entries[0].nbytes == 1500000
    assert entries[1].status == 404 and not entries[1].ok


def test_parse_skips_malformed_lines():
    text = SAMPLE + "garbage line that matches nothing\n"
    assert len(parse_clf(text)) == 2
    with pytest.raises(ValueError):
        parse_clf(text, strict=True)


def test_write_clf_from_run():
    cluster = SWEBCluster(meiko_cs2(2), policy="round-robin", seed=1)
    cluster.add_file("/a.html", 1e4, home=0)
    for _ in range(3):
        cluster.run(until=cluster.fetch("/a.html"))
    cluster.run(until=cluster.fetch("/missing.html"))
    log_text = write_clf(cluster.metrics.records)
    entries = parse_clf(log_text, strict=True)
    assert len(entries) == 4
    assert sum(1 for e in entries if e.status == 200) == 3
    assert sum(1 for e in entries if e.status == 404) == 1


def test_workload_from_clf_offsets():
    entries = parse_clf(SAMPLE)
    workload = workload_from_clf(entries)
    assert len(workload) == 2
    assert workload.arrivals[0].time == pytest.approx(0.0)
    assert workload.arrivals[1].time == pytest.approx(1.0)


def test_workload_from_clf_time_scale():
    entries = parse_clf(SAMPLE)
    workload = workload_from_clf(entries, time_scale=0.5)
    assert workload.arrivals[1].time == pytest.approx(0.5)
    with pytest.raises(ValueError):
        workload_from_clf(entries, time_scale=0.0)


def test_workload_from_clf_empty():
    workload = workload_from_clf([])
    assert len(workload) == 0


def test_full_loop_run_write_replay():
    """Run a scenario, dump its access log, replay the log as a new run."""
    corpus = uniform_corpus(6, 2e4, 2)
    wl = burst_workload(2, 3.0, uniform_sampler(corpus, RandomStreams(1)))
    first = run_scenario(Scenario(name="orig", spec=meiko_cs2(2),
                                  corpus=corpus, workload=wl, seed=1))
    log_text = write_clf(first.metrics.records, epoch=DEFAULT_EPOCH)
    replay = workload_from_clf(parse_clf(log_text, strict=True))
    assert len(replay) == first.metrics.total
    second = run_scenario(Scenario(name="replay", spec=meiko_cs2(2),
                                   corpus=corpus, workload=replay, seed=2))
    assert second.completed == first.completed
