"""Extra kernel edge-case tests (conditions, interrupts, determinism)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_nested_conditions():
    sim = Simulator()
    out = []

    def proc():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        c = sim.timeout(9.0, value="c")
        got = yield (a & b) | c
        out.append((sim.now, sorted(v for v in got.values()
                                    if isinstance(v, str))))

    sim.spawn(proc())
    sim.run()
    # (a & b) completes at t=2, long before c.
    assert out[0][0] == pytest.approx(2.0)


def test_condition_over_already_failed_event_defused():
    sim = Simulator()
    caught = []

    def proc():
        bad = sim.event()
        bad.fail(RuntimeError("pre-failed"))
        bad.defuse()
        # wait for the failure to be processed
        yield sim.timeout(0.1)
        try:
            yield AnyOf(sim, [bad, sim.timeout(1.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(proc())
    sim.run()
    assert caught == ["pre-failed"]


def test_interrupt_during_condition_wait():
    sim = Simulator()
    out = []

    def sleeper():
        try:
            yield AllOf(sim, [sim.timeout(50.0), sim.timeout(60.0)])
        except Interrupt as inter:
            out.append((sim.now, inter.cause))

    proc = sim.spawn(sleeper())

    def poker():
        yield sim.timeout(1.0)
        proc.interrupt("now")

    sim.spawn(poker())
    sim.run()
    assert out == [(1.0, "now")]


def test_double_interrupt_is_safe():
    sim = Simulator()
    hits = []

    def sleeper():
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                hits.append(sim.now)

    proc = sim.spawn(sleeper())

    def poker():
        yield sim.timeout(1.0)
        proc.interrupt()
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.spawn(poker())
    sim.run()
    assert hits == [1.0, 2.0]


def test_process_is_alive_and_target():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)

    proc = sim.spawn(child())
    assert proc.is_alive
    sim.run(until=1.0)
    assert proc.is_alive
    assert proc.target is not None
    sim.run()
    assert not proc.is_alive


def test_event_or_and_require_same_sim():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AllOf(sim1, [sim1.timeout(1.0), sim2.timeout(1.0)])


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_defused_failure_does_not_crash_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("ignored"))
    ev.defuse()
    sim.run()   # must not raise


def test_value_of_failed_event_is_the_exception():
    sim = Simulator()
    ev = sim.event()
    exc = RuntimeError("boom")
    ev.fail(exc)
    ev.defuse()
    sim.run()
    assert ev.value is exc
    assert not ev.ok


def test_event_count_monotone_across_runs():
    sim = Simulator()
    sim.timeout(1.0)
    sim.run(until=2.0)
    first = sim.event_count
    sim.timeout(1.0)
    sim.run()
    assert sim.event_count > first


def test_process_return_inside_try_finally():
    sim = Simulator()
    cleaned = []

    def proc():
        try:
            yield sim.timeout(1.0)
            return "done"
        finally:
            cleaned.append(sim.now)

    value = sim.run(until=sim.spawn(proc()))
    assert value == "done"
    assert cleaned == [1.0]
