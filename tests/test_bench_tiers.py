"""Tests for the --scale bench tiers (docs/SCALING.md).

Covers ``parse_scale`` (float vs tier-letter forms), the tier phase
registry, and a miniature tier run through ``run_bench`` — scaled down
by the float multiplier so the test finishes in milliseconds while
still exercising the exact code path ``sweb-repro bench --scale L``
takes.
"""

import io

import pytest

from repro.bench import (
    PHASES,
    TIER_PHASES,
    TIERS,
    parse_scale,
    run_bench,
    run_phase,
)


def test_parse_scale_accepts_floats_and_tiers():
    assert parse_scale(1.0) == (1.0, None)
    assert parse_scale("0.25") == (0.25, None)
    assert parse_scale(2) == (2.0, None)
    assert parse_scale("L") == (1.0, "L")
    assert parse_scale("xl") == (1.0, "XL")
    assert parse_scale(" m ") == (1.0, "M")
    with pytest.raises(ValueError, match="S/M/L/XL"):
        parse_scale("huge")


def test_tier_registry_shape():
    assert set(TIERS) == {"S", "M", "L", "XL"}
    for tier, cfg in TIERS.items():
        assert f"fluid_stream@{tier}" in TIER_PHASES
        assert f"shard_grid@{tier}" in TIER_PHASES
        # the L tier is the acceptance bar: >= 1M simulated requests
        assert cfg["fluid_requests"] >= 100_000
        assert cfg["grid_cells"] * cfg["grid_requests"] \
            == cfg["fluid_requests"]
    assert TIERS["L"]["fluid_requests"] >= 1_000_000
    assert not set(TIER_PHASES) & set(PHASES)


def test_tier_phases_record_sim_req_and_events_rates():
    result = run_phase("fluid_stream@S", repeats=1, scale=0.02)
    assert result["unit"] == "sim-req"
    assert result["units"] == int(TIERS["S"]["fluid_requests"] * 0.02)
    assert result["per_s"] > 0
    assert result["events_per_s"] > 0
    assert result["tier"] == "S"
    assert len(result["fingerprint"]) == 16

    grid = run_phase("shard_grid@S", repeats=1, scale=0.02)
    assert grid["unit"] == "sim-req"
    assert grid["cells"] == TIERS["S"]["grid_cells"]
    assert grid["units"] == grid["cells"] * int(
        TIERS["S"]["grid_requests"] * 0.02)
    assert len(grid["grid_fingerprint"]) == 16


def test_run_bench_tier_appends_tier_phases():
    out = io.StringIO()
    doc = run_bench(repeats=1, scale=0.01, tier="S",
                    phases=None, stream=out)
    assert doc["tier"] == "S"
    assert "fluid_stream@S" in doc["phases"]
    assert "shard_grid@S" in doc["phases"]
    assert set(PHASES) <= set(doc["phases"])
    assert "fluid_stream@S" in out.getvalue()
    with pytest.raises(KeyError, match="unknown tier"):
        run_bench(repeats=1, tier="Q", stream=io.StringIO())


def test_run_bench_without_tier_skips_tier_phases():
    out = io.StringIO()
    doc = run_bench(repeats=1, scale=0.01, stream=out,
                    phases=["timeout_chain"])
    assert "tier" not in doc
    assert set(doc["phases"]) == {"timeout_chain"}
    # tier phases remain addressable by explicit --phase
    doc = run_bench(repeats=1, scale=0.01, stream=io.StringIO(),
                    phases=["fluid_stream@S"])
    assert set(doc["phases"]) == {"fluid_stream@S"}
