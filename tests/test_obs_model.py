"""Property tests for the span model (docs/TRACING.md).

Hypothesis drives two generators:

* random well-formed span trees built through the :class:`Tracer` API —
  nesting, monotone timestamps, child-sum and breakdown-reconciliation
  invariants must hold by construction;
* random *small scenarios* through the full stack — every completed
  request's trace must validate cleanly and its stage sums must
  reconcile with the terminal ``RequestRecord`` latency.

Plus direct negative tests: hand-built malformed traces must be caught
by :meth:`RequestTrace.problems`.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import STAGES, Span, Tracer

#: The roll-up stages child spans may carry (``other`` is synthesized).
CHILD_STAGES = tuple(s for s in STAGES if s != "other")


# -- random well-formed trees via the Tracer API --------------------------

@st.composite
def _sub_intervals(draw, start, end, max_children=3):
    """Up to ``max_children`` disjoint, ordered (a, b) inside [start, end]."""
    n = draw(st.integers(0, max_children))
    if n == 0 or end - start <= 0:
        return []
    cuts = sorted(draw(st.lists(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        min_size=2 * n, max_size=2 * n)))
    width = end - start
    return [(start + width * cuts[2 * i], start + width * cuts[2 * i + 1])
            for i in range(n)]


@st.composite
def span_tree(draw):
    """A tracer holding one structurally-valid random request trace."""
    tracer = Tracer()
    t0 = draw(st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False))
    duration = draw(st.floats(0.0, 1e3, allow_nan=False,
                              allow_infinity=False))
    root = tracer.begin(0, "/doc", "ucsb", t0)

    def grow(parent, start, end, depth):
        for (a, b) in draw(_sub_intervals(start, end)):
            stage = draw(st.sampled_from(CHILD_STAGES))
            node = draw(st.one_of(st.none(), st.integers(0, 5)))
            child = tracer.start(parent, f"op{depth}", a, stage, node=node)
            if depth < 2:
                grow(child, a, b, depth + 1)
            tracer.finish(child, b)

    grow(root, t0, t0 + duration, 0)
    tracer.finish(root, t0 + duration)
    return tracer


@given(span_tree())
@settings(max_examples=120, deadline=None)
def test_generated_trees_satisfy_all_invariants(tracer):
    trace = tracer.get(0)
    assert trace.problems() == []
    root = trace.root
    assert root is not None and root.parent_id is None
    for span in trace:
        # monotone sim-clock timestamps
        assert span.closed and span.end >= span.start
        # children sum to at most their parent
        kids = trace.children(span)
        assert sum(k.duration for k in kids) <= span.duration + 1e-9
    # stage totals never exceed the root duration...
    totals = trace.stage_totals()
    assert sum(totals.values()) <= root.duration + 1e-9
    assert set(totals) <= set(CHILD_STAGES)
    # ...and the breakdown reconciles exactly with any terminal latency.
    breakdown = trace.breakdown()
    assert sum(breakdown.values()) == pytest.approx(root.duration)
    assert trace.reconciles(root.duration)
    latency = root.duration * 2 + 1.0
    assert sum(trace.breakdown(latency).values()) == pytest.approx(latency)


# -- malformed traces are caught ------------------------------------------

def _flat(tracer, req_id=0):
    root = tracer.begin(req_id, "/x", "c", 0.0)
    return root


def test_overlapping_siblings_detected():
    tracer = Tracer()
    root = _flat(tracer)
    a = tracer.start(root, "a", 1.0, "analysis")
    tracer.finish(a, 5.0)
    b = tracer.start(root, "b", 4.0, "network")
    tracer.finish(b, 6.0)
    tracer.finish(root, 10.0)
    assert any("overlap" in p for p in tracer.get(0).problems())


def test_child_escaping_parent_detected():
    tracer = Tracer()
    root = _flat(tracer)
    child = tracer.start(root, "c", 1.0, "analysis")
    tracer.finish(root, 2.0)
    tracer.finish(child, 3.0)           # outruns the closed root
    assert any("escapes" in p for p in tracer.get(0).problems())


def test_unclosed_span_detected():
    tracer = Tracer()
    root = _flat(tracer)
    tracer.start(root, "open", 1.0, "analysis")
    tracer.finish(root, 2.0)
    assert any("never closed" in p for p in tracer.get(0).problems())


def test_backwards_span_detected():
    tracer = Tracer()
    root = _flat(tracer)
    bad = tracer.start(root, "bad", 5.0, "analysis")
    tracer.finish(bad, 1.0)
    tracer.finish(root, 10.0)
    assert any("ends before" in p for p in tracer.get(0).problems())


def test_children_over_parent_budget_detected():
    # Two non-overlapping children can still sum past a parent whose
    # interval they escape — the sum check needs the nesting check.
    tracer = Tracer()
    root = _flat(tracer)
    tracer.finish(root, 1.0)
    a = tracer.start(root, "a", 0.0, "analysis")
    tracer.finish(a, 0.8)
    b = tracer.start(root, "b", 0.9, "network")
    tracer.finish(b, 2.0)
    problems = tracer.get(0).problems()
    assert any("sum past" in p for p in problems)


def test_empty_trace_has_no_root_and_flags_it():
    from repro.obs.spans import RequestTrace

    trace = RequestTrace(0, "/x")
    assert trace.root is None
    assert len(trace) == 0
    assert trace.stage_totals() == {}
    assert trace.breakdown() == {"other": 0.0}
    assert any("found 0" in p for p in trace.problems())


def test_two_roots_detected():
    tracer = Tracer()
    root = _flat(tracer)
    tracer.finish(root, 1.0)
    second = Span(span_id=998, req_id=0, parent_id=None, name="again",
                  stage="request", start=0.0, end=1.0)
    tracer.get(0).add(second)
    assert any("found 2" in p for p in tracer.get(0).problems())


def test_reconciles_rejects_latency_below_stage_cover():
    tracer = Tracer()
    root = _flat(tracer)
    work = tracer.start(root, "work", 0.0, "data_transfer")
    tracer.finish(work, 5.0)
    tracer.finish(root, 5.0)
    trace = tracer.get(0)
    assert trace.reconciles(5.0)
    assert not trace.reconciles(1.0)    # stages cover more than claimed


def test_foreign_parent_span_is_ignored():
    one, two = Tracer(), Tracer()
    root = one.begin(0, "/x", "c", 0.0)
    # a handle from another tracer (unknown req_id here) is a no-op
    assert two.start(root, "x", 0.0, "analysis") is None


def test_reprs_are_informative():
    tracer = Tracer(max_requests=3)
    root = tracer.begin(0, "/x", "c", 0.0)
    assert "request" in repr(root)
    tracer.finish(root, 1.0)
    assert "spans=1" in repr(tracer.get(0))
    assert "traces=1/3" in repr(tracer)
    assert "∞" in repr(Tracer())


def test_missing_root_and_unknown_parent_detected():
    tracer = Tracer()
    root = tracer.begin(0, "/x", "c", 0.0)
    orphan = Span(span_id=999, req_id=0, parent_id=12345, name="orphan",
                  stage="analysis", start=0.1, end=0.2)
    tracer.get(0).add(orphan)
    tracer.finish(root, 1.0)
    assert any("unknown parent" in p for p in tracer.get(0).problems())


# -- sampling and the None-tolerant API -----------------------------------

def test_head_sampling_bounds_trace_count():
    tracer = Tracer(max_requests=2)
    assert tracer.begin(0, "/a", "c", 0.0) is not None
    assert tracer.begin(1, "/b", "c", 0.0) is not None
    assert tracer.begin(2, "/c", "c", 0.0) is None
    assert len(tracer) == 2
    assert [t.req_id for t in tracer.traces()] == [0, 1]


def test_disabled_tracer_collects_nothing():
    tracer = Tracer(enabled=False)
    root = tracer.begin(0, "/a", "c", 0.0)
    assert root is None
    # Every downstream call must be a no-op, not a crash.
    child = tracer.start(root, "x", 0.0, "analysis")
    assert child is None
    tracer.finish(child, 1.0)
    tracer.annotate(child, k=1)
    assert len(tracer) == 0


def test_negative_sampling_cap_rejected():
    with pytest.raises(ValueError):
        Tracer(max_requests=-1)


def test_span_tags_flow_through_start_finish_annotate():
    tracer = Tracer()
    root = tracer.begin(7, "/d", "rutgers", 1.0)
    child = tracer.start(root, "dns", 1.0, "network", node=3, attempt=1)
    tracer.annotate(child, cache_hit=True)
    tracer.finish(child, 1.5, address=4)
    assert child.tags == {"attempt": 1, "cache_hit": True, "address": 4}
    assert child.node == 3
    assert tracer.get(7).get(child.span_id) is child


# -- full-stack: random small scenarios reconcile -------------------------

def _run_traced_scenario(seed):
    from repro.experiments.runner import run_scenario
    from repro.workload import build_scenario

    scenario = build_scenario("table1", rps=6, duration=3.0, nodes=3,
                              seed=seed)
    scenario = replace(scenario, tracer=Tracer())
    result = run_scenario(scenario)
    return scenario.tracer, result


@given(seed=st.integers(0, 6))
@settings(max_examples=4, deadline=None)
def test_scenario_traces_validate_and_reconcile(seed):
    tracer, result = _run_traced_scenario(seed)
    checked = 0
    for rec in result.metrics.records:
        trace = tracer.get(rec.req_id)
        assert trace is not None           # no cap: every request traced
        if not rec.ok:
            continue
        checked += 1
        assert trace.problems() == []
        assert trace.reconciles(rec.response_time), (
            rec.req_id, trace.stage_totals(), rec.response_time)
        # the root span *is* the client-observed response time
        assert trace.root.duration == pytest.approx(rec.response_time)
    assert checked > 0


test_scenario_traces_validate_and_reconcile.__coverage_gate_skip__ = True
