"""Tests for the docs consistency gate (scripts/check_docs.py).

Runs the checker against the live repo tree (the tier-1 wiring: docs
must stay consistent with the CLI) and against throwaway fixture trees
that exercise each failure mode — orphan pages, dead relative links,
and stale ``sweb-repro`` invocations.
"""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docs.py"

spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def _tree(tmp_path, index="", pages=None, readme=None):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "README.md").write_text(index)
    for name, text in (pages or {}).items():
        (docs / name).write_text(text)
    if readme is not None:
        (tmp_path / "README.md").write_text(readme)
    return tmp_path


# -- the live tree (the tier-1 gate) ---------------------------------------

def test_live_repo_tree_is_clean(capsys):
    assert check_docs.main(["--root", str(REPO)]) == 0
    assert "ok" in capsys.readouterr().out


# -- failure modes against fixtures ----------------------------------------

def test_clean_fixture_passes(tmp_path, capsys):
    root = _tree(tmp_path,
                 index="# Index\n- [Guide](GUIDE.md)\n",
                 pages={"GUIDE.md": "Run `sweb-repro bench --scale M`.\n"
                                    "Back to [index](README.md).\n"},
                 readme="See [the guide](docs/GUIDE.md).\n")
    assert check_docs.main(["--root", str(root)]) == 0
    capsys.readouterr()


def test_orphan_page_fails(tmp_path):
    root = _tree(tmp_path, index="# Index\n",
                 pages={"LONELY.md": "nobody links me\n"})
    problems = check_docs.check_tree(root)
    assert any("LONELY.md" in p and "not linked" in p for p in problems)


def test_dead_relative_link_fails(tmp_path):
    root = _tree(tmp_path,
                 index="- [Guide](GUIDE.md)\n",
                 pages={"GUIDE.md": "see [gone](MISSING.md) "
                                    "and [anchor](#fine) and "
                                    "[web](https://example.com/x.md)\n"},
                 readme="[also gone](docs/NOPE.md)\n")
    problems = check_docs.check_tree(root)
    dead = [p for p in problems if "dead link" in p]
    assert len(dead) == 2
    assert any("MISSING.md" in p for p in dead)
    assert any("NOPE.md" in p for p in dead)


def test_stale_cli_invocations_fail(tmp_path):
    root = _tree(tmp_path,
                 index="- [G](G.md)\n",
                 pages={"G.md": (
                     "```\n"
                     "$ sweb-repro frobnicate --fast\n"
                     "sweb-repro bench --no-such-flag\n"
                     "sweb-repro bench --scale L && echo done\n"
                     "sweb-repro bench \\\n"
                     "    --repeats 5\n"
                     "```\n"
                     "Inline `sweb-repro lint --nonexistent` too.\n")})
    problems = check_docs.check_tree(root)
    assert any("unknown subcommand 'frobnicate'" in p for p in problems)
    assert any("'--no-such-flag'" in p for p in problems)
    assert any("'--nonexistent'" in p for p in problems)
    # valid invocations — including the backslash-continued one and the
    # one followed by shell chaining — produce no noise
    assert not any("--scale" in p or "--repeats" in p for p in problems)


def test_valid_flag_forms_accepted(tmp_path):
    root = _tree(tmp_path,
                 index="- [G](G.md)\n",
                 pages={"G.md": "`sweb-repro bench --scale=M --out x.json`\n"
                                "`sweb-repro --help`\n"
                                "`sweb-repro run T1 --full`\n"})
    problems = check_docs.check_tree(root)
    cli = [p for p in problems if "sweb-repro" in p]
    assert cli == []


def test_choices_flag_values_validated(tmp_path):
    root = _tree(tmp_path,
                 index="- [G](G.md)\n",
                 pages={"G.md": (
                     "`sweb-repro serve --scheduler sweb --nodes 4`\n"
                     "`sweb-repro serve --scheduler=jsq`\n"
                     "`sweb-repro serve --scheduler frobnicator`\n"
                     "`sweb-repro serve --testbed=vax`\n")})
    problems = check_docs.check_tree(root)
    bad = [p for p in problems if "bad value" in p]
    assert len(bad) == 2
    assert any("'frobnicator'" in p and "--scheduler" in p for p in bad)
    assert any("'vax'" in p and "--testbed" in p for p in bad)
    # the valid spellings (space and = forms) produce no noise
    assert not any("'sweb'" in p or "'jsq'" in p for p in problems)


def test_experiments_page_scanned(tmp_path):
    root = _tree(tmp_path, index="")
    (root / "EXPERIMENTS.md").write_text(
        "see [gone](nowhere.md)\n"
        "`sweb-repro serve --scheduler nosuch`\n")
    problems = check_docs.check_tree(root)
    assert any("EXPERIMENTS.md" in p and "dead link" in p
               for p in problems)
    assert any("EXPERIMENTS.md" in p and "bad value 'nosuch'" in p
               for p in problems)


def test_missing_docs_dir_and_bad_root(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert check_docs.check_tree(empty) == [f"{empty}: no docs/ directory"]
    assert check_docs.main(["--root", str(tmp_path / "absent")]) == 2
    root = _tree(tmp_path, index="", pages={"X.md": "hi\n"})
    assert check_docs.main(["--root", str(root)]) == 1
    capsys.readouterr()


def test_missing_index_reported(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "PAGE.md").write_text("hello\n")
    problems = check_docs.check_tree(tmp_path)
    assert any("docs/README.md: missing" in p for p in problems)


# -- parsing helpers -------------------------------------------------------

def test_code_region_extraction():
    text = ("prose sweb-repro not-code\n"
            "```sh\n"
            "sweb-repro list\n"
            "```\n"
            "and `sweb-repro bench` inline\n")
    invocations = check_docs.cli_invocations(text)
    assert "list" in invocations
    assert "bench" in invocations
    # the prose mention is not treated as an invocation
    assert not any("not-code" in inv for inv in invocations)


def test_markdown_links_extraction():
    links = check_docs.markdown_links(
        "[a](X.md) ![img](pic.png) [b](Y.md#sec) [c](http://e.com)")
    assert links == ["X.md", "pic.png", "Y.md#sec", "http://e.com"]
