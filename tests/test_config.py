"""Tests for configuration-file support (repro.config)."""

import json

import pytest

from repro.cluster import meiko_cs2, sun_now
from repro.config import (
    SWEBConfig,
    cluster_spec_from_dict,
    cluster_spec_to_dict,
    cost_parameters_from_dict,
    cost_parameters_to_dict,
    dump_config,
    load_config,
)
from repro.core import CostParameters, Oracle


def test_cluster_spec_roundtrip():
    spec = meiko_cs2(4)
    data = cluster_spec_to_dict(spec)
    back = cluster_spec_from_dict(data)
    assert back == spec


def test_cluster_spec_from_preset():
    spec = cluster_spec_from_dict({"preset": "now", "nodes": 3})
    assert spec.name == "now" and spec.num_nodes == 3
    spec = cluster_spec_from_dict({"preset": "meiko"})
    assert spec.num_nodes == 6


def test_cluster_spec_bad_preset():
    with pytest.raises(ValueError):
        cluster_spec_from_dict({"preset": "cray"})
    with pytest.raises(ValueError):
        cluster_spec_from_dict({"preset": "meiko", "nodes": 0})


def test_cost_parameters_roundtrip():
    params = CostParameters(delta=0.5, loadd_period=1.0)
    back = cost_parameters_from_dict(cost_parameters_to_dict(params))
    assert back == params


def test_cost_parameters_unknown_key_rejected():
    with pytest.raises(ValueError, match="turbo"):
        cost_parameters_from_dict({"turbo": True})


def test_load_config_from_dict():
    config = load_config({
        "cluster": {"preset": "meiko", "nodes": 2},
        "scheduler": {"delta": 0.4},
        "oracle": {"rules": [{"pattern": "*.tif", "ops_per_byte": 9.0}]},
        "server": {"policy": "round-robin", "seed": 5, "backlog": 32},
    })
    assert config.spec.num_nodes == 2
    assert config.params.delta == 0.4
    assert config.policy == "round-robin"
    assert config.seed == 5 and config.backlog == 32
    est = config.oracle.characterize("/m.tif", 10.0)
    assert est.cpu_ops == pytest.approx(90.0)


def test_load_config_defaults():
    config = load_config({})
    assert config.spec.num_nodes == 6
    assert config.policy == "sweb"


def test_load_config_from_json_string_and_file(tmp_path):
    text = json.dumps({"cluster": {"preset": "now", "nodes": 2}})
    config = load_config(text)
    assert config.spec.num_nodes == 2
    path = tmp_path / "sweb.json"
    path.write_text(text)
    config2 = load_config(path)
    assert config2.spec.num_nodes == 2


def test_load_config_rejects_non_object():
    with pytest.raises(ValueError):
        load_config("[1, 2, 3]")


def test_dump_load_roundtrip(tmp_path):
    config = SWEBConfig(spec=sun_now(3), params=CostParameters(delta=0.9),
                        oracle=Oracle(), policy="cpu-only", seed=9,
                        backlog=99, dns_ttl=30.0)
    path = tmp_path / "conf.json"
    dump_config(config, path)
    back = load_config(path)
    assert back.spec == config.spec
    assert back.params == config.params
    assert back.policy == "cpu-only"
    assert back.backlog == 99
    assert back.dns_ttl == 30.0


def test_config_build_produces_working_cluster():
    config = load_config({"cluster": {"preset": "meiko", "nodes": 2},
                          "server": {"seed": 3}})
    cluster = config.build()
    cluster.add_file("/x.html", 1e3, home=0)
    rec = cluster.run(until=cluster.fetch("/x.html"))
    assert rec.ok
