"""Named-scenario registry tests plus failure-injection tests."""

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.experiments.runner import run_scenario
from repro.workload.scenarios import SCENARIOS, build_scenario, scenario_names


# ----------------------------------------------------------- named scenarios
def test_scenario_names_listed():
    assert scenario_names() == sorted(SCENARIOS)
    assert {"table1", "table3", "table4", "skewed"} <= set(SCENARIOS)


def test_build_scenario_unknown():
    with pytest.raises(KeyError):
        build_scenario("table99")


def test_build_scenario_overrides():
    sc = build_scenario("table3", rps=10, policy="round-robin", duration=5.0)
    assert sc.policy == "round-robin"
    assert sc.workload.offered_rps == pytest.approx(10.0)
    assert sc.spec.num_nodes == 6
    assert sc.dns_ttl == 300.0


@pytest.mark.parametrize("name,overrides", [
    ("table1", dict(rps=2, duration=3.0, nodes=2, file_size=1e4)),
    ("table3", dict(rps=4, duration=3.0, nodes=3)),
    ("table4", dict(rps=1, duration=3.0, nodes=2)),
    ("skewed", dict(rps=2, duration=3.0, nodes=3)),
])
def test_named_scenarios_run_end_to_end(name, overrides):
    result = run_scenario(build_scenario(name, **overrides))
    assert result.metrics.total > 0
    assert result.completed + result.metrics.dropped <= result.metrics.total \
        or result.completed > 0


# ---------------------------------------------------------- failure injection
def test_all_nodes_leave_drops_everything():
    cluster = SWEBCluster(meiko_cs2(2), policy="round-robin", seed=1)
    cluster.add_file("/x.html", 1e3, home=0)
    for n in range(2):
        cluster.node_leave(n)
    recs = [cluster.run(until=cluster.fetch("/x.html")) for _ in range(3)]
    assert all(r.dropped and r.drop_reason == "refused" for r in recs)


def test_dns_zone_emptied_mid_run():
    cluster = SWEBCluster(meiko_cs2(2), policy="round-robin", seed=1)
    cluster.add_file("/x.html", 1e3, home=0)
    for n in range(2):
        cluster.dns.deregister(n)
    rec = cluster.run(until=cluster.fetch("/x.html"))
    assert rec.dropped and rec.drop_reason == "dns"


def test_inflight_requests_survive_node_departure():
    # A node leaving stops *accepting*; requests already in service finish.
    cluster = SWEBCluster(meiko_cs2(1), policy="round-robin", seed=1)
    cluster.add_file("/big.gif", 1.5e6, home=0)
    proc = cluster.fetch("/big.gif")
    sim = cluster.sim

    def leaver():
        yield sim.timeout(0.2)      # request is mid-flight by now
        cluster.node_leave(0)

    sim.spawn(leaver())
    rec = cluster.run(until=proc)
    assert rec.ok


def test_redirect_target_dies_before_second_hop():
    # File-locality redirects to node 1; node 1 dies before the client's
    # second connection arrives -> the retry is refused, counted as drop.
    cluster = SWEBCluster(meiko_cs2(2), policy="file-locality", seed=1)
    cluster.add_file("/on1.gif", 1.5e6, home=1)
    sim = cluster.sim
    proc = cluster.fetch("/on1.gif")

    def killer():
        # Kill node 1 while the 302 is still travelling back.
        yield sim.timeout(0.05)
        cluster.node_leave(1)

    sim.spawn(killer())
    rec = cluster.run(until=proc)
    assert rec.dropped and rec.drop_reason == "refused"
    assert rec.redirected


def test_zero_byte_file_served():
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=1)
    cluster.add_file("/empty.html", 0.0, home=0)
    rec = cluster.run(until=cluster.fetch("/empty.html"))
    assert rec.ok and rec.size == 0.0


def test_malformed_request_gets_400():
    from repro.sim import Event
    from repro.web.server import Connection
    from repro.web.client import UCSB_CLIENT

    cluster = SWEBCluster(meiko_cs2(1), policy="round-robin", seed=1)
    server = cluster.servers[0]
    rec = cluster.metrics.new_record("/junk", start=0.0)
    conn = Connection(raw_request="THIS IS NOT HTTP\r\n\r\n",
                      wan=UCSB_CLIENT.wan, record=rec,
                      reply=Event(cluster.sim))
    assert server.try_accept(conn)
    response = cluster.run(until=conn.reply)
    assert response.status == 400


def test_dispatcher_mode_routes_all_through_node_zero():
    cluster = SWEBCluster(meiko_cs2(3), policy="sweb", seed=1, dispatcher=0)
    cluster.add_file("/a.html", 1e3, home=1)
    recs = [cluster.run(until=cluster.fetch("/a.html")) for _ in range(4)]
    assert all(r.dns_node == 0 for r in recs)
    assert all(r.ok for r in recs)


def test_dispatcher_validation():
    with pytest.raises(ValueError):
        SWEBCluster(meiko_cs2(2), dispatcher=7)
