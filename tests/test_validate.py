"""Tests for the run-validation module (repro.experiments.validate)."""

import pytest

from repro.cluster import meiko_cs2, sun_now
from repro.experiments.runner import Scenario, run_scenario
from repro.experiments.validate import (
    ValidationError,
    validate_result,
)
from repro.sim import RandomStreams
from repro.workload import bimodal_corpus, burst_workload, uniform_corpus, uniform_sampler


def healthy_run(policy="sweb", spec=None, **kw):
    spec = spec or meiko_cs2(3)
    corpus = bimodal_corpus(30, spec.num_nodes, large_frac=0.3, seed=2)
    wl = burst_workload(4, 5.0, uniform_sampler(corpus, RandomStreams(2)))
    return run_scenario(Scenario(name="v", spec=spec, corpus=corpus,
                                 workload=wl, policy=policy, seed=2, **kw))


@pytest.mark.parametrize("policy", ["round-robin", "file-locality", "sweb"])
def test_healthy_runs_validate(policy):
    result = healthy_run(policy)
    report = validate_result(result)
    assert report.ok
    assert {"settlement", "accounting", "causality", "placement",
            "conservation", "caches"} <= set(report.checks)


def test_run_with_drops_validates():
    # A deliberately overloaded single node: drops must not trip checks.
    spec = meiko_cs2(1)
    corpus = uniform_corpus(20, 1.5e6, 1)
    wl = burst_workload(12, 5.0, uniform_sampler(corpus, RandomStreams(2)))
    result = run_scenario(Scenario(name="v", spec=spec, corpus=corpus,
                                   workload=wl, policy="round-robin",
                                   seed=2, backlog=8, client_timeout=15.0))
    assert result.metrics.dropped > 0
    assert validate_result(result).ok


def test_now_testbed_validates():
    result = healthy_run(spec=sun_now(2))
    assert validate_result(result).ok


def test_violation_detected_and_raised():
    result = healthy_run()
    # Corrupt a record: claim it was served by a non-existent node.
    victim = next(r for r in result.metrics.records if r.ok)
    victim.served_by = 99
    with pytest.raises(ValidationError, match="served_by"):
        validate_result(result)
    report = validate_result(result, strict=False)
    assert not report.ok
    assert any("served_by" in v for v in report.violations)


def test_unmarked_move_detected():
    result = healthy_run()
    victim = next(r for r in result.metrics.records
                  if r.ok and not r.redirected)
    victim.served_by = (victim.dns_node + 1) % 3
    report = validate_result(result, strict=False)
    assert any("without being marked redirected" in v
               for v in report.violations)


def test_dangling_request_detected():
    result = healthy_run()
    result.metrics.records[0].end = None
    report = validate_result(result, strict=False)
    assert any("never settled" in v for v in report.violations)
