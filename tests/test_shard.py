"""Tests for the sharded multiprocess grid runner (docs/SCALING.md).

Pins the two contracts the shard design rests on:

* **merge exactness** — folding per-shard registry snapshots yields the
  same counters/histograms as one serial registry (hypothesis property
  over arbitrary shard splits);
* **determinism across execution modes** — per-cell fingerprints and
  the merged snapshot are bit-identical whatever the worker count or
  submission order, and a scenario cell run through a pool worker still
  matches the serial golden record lines (the same format pinned by
  ``tests/data/determinism_fingerprint.json``).

The CI box may have a single core; nothing here assumes parallel
speedup, only that pools with >1 worker behave identically.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import (
    FluidCell,
    ScenarioCell,
    grid_fingerprint,
    make_fluid_grid,
    run_cell,
    run_grid,
)
from repro.obs import MetricsRegistry, merge_snapshots
from repro.workload import FluidScenario, run_fluid

GOLDEN = Path(__file__).resolve().parent / "data" / \
    "determinism_fingerprint.json"


def _base(n: int = 3_000) -> FluidScenario:
    return FluidScenario(name="shard-t", nodes=3, rate=500.0,
                         n_requests=n, n_paths=64, hot_set=8, batch=512)


# -- hypothesis: merged shards == serial registry --------------------------

@given(st.lists(st.integers(min_value=0, max_value=400),
                min_size=1, max_size=6),
       st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_merged_shard_registries_equal_serial(counts, rng):
    """Split a stream of observations across N shard registries any
    way at all; the merged snapshot must equal the one-registry run."""
    serial = MetricsRegistry()
    shards = [MetricsRegistry() for _ in counts]
    for shard_idx, n in enumerate(counts):
        shard = shards[shard_idx]
        for i in range(n):
            value = rng.uniform(0.001, 40.0)
            for reg in (serial, shard):
                reg.counters("req").incr("total")
                reg.counters("req").incr(f"shardable.k{i % 3}", by=2)
                reg.gauge("bytes").add(value * 10)
                reg.histogram("rt").record(value)
    merged = merge_snapshots([s.snapshot() for s in shards])
    expected = serial.snapshot()
    assert merged["counters"] == expected["counters"]
    for name, gauge in expected["gauges"].items():
        assert merged["gauges"][name] == pytest.approx(gauge)
    for name, hist in expected["histograms"].items():
        got = merged["histograms"][name]
        assert got["buckets"] == hist["buckets"]
        assert got["count"] == hist["count"]
        assert got["min"] == hist["min"] and got["max"] == hist["max"]
        assert got["total"] == pytest.approx(hist["total"])
        for q in ("p50", "p95", "p99"):
            if hist[q] is None:
                assert got[q] is None
            else:
                assert got[q] == pytest.approx(hist[q])


# -- determinism across worker counts and orderings ------------------------

def test_grid_identical_across_worker_counts_and_orderings():
    cells = make_fluid_grid(_base(), seeds=[3, 1, 2, 5])
    serial = run_grid(cells, workers=1)
    pooled = run_grid(cells, workers=2)
    shuffled = run_grid(list(reversed(cells)), workers=3)
    for report in (pooled, shuffled):
        assert report.grid_fingerprint == serial.grid_fingerprint
        assert report.fingerprints == serial.fingerprints
        assert report.merged == serial.merged  # bit-equal, not approx
        assert [c.cell_id for c in report.cells] \
            == [c.cell_id for c in serial.cells]
    assert serial.workers == 1 and pooled.workers == 2


def test_sharded_merge_equals_serial_fluid_registry():
    """One registry receiving every cell's stream == the sharded merge."""
    cells = make_fluid_grid(_base(), seeds=[1, 2, 3])
    report = run_grid(cells, workers=2)
    combined = MetricsRegistry()
    for cell in cells:
        run_fluid(cell.scenario, registry=combined, keep_records=False)
    assert report.merged == combined.snapshot()


def test_cell_results_carry_pure_data():
    report = run_grid(make_fluid_grid(_base(800), seeds=[1]), workers=1)
    cell = report.cells[0]
    assert cell.kind == "fluid"
    assert cell.n_requests == 800
    assert cell.detail["served"] and sum(cell.detail["served"]) == 800
    doc = report.to_dict()
    json.dumps(doc)  # JSON-ready, nothing live crosses the boundary
    assert doc["n_requests"] == 800
    assert doc["grid_fingerprint"] == report.grid_fingerprint


# -- scenario cells against the determinism golden -------------------------

def _det_meiko():
    """The golden file's det-meiko scenario, rebuilt for a worker."""
    import tests.test_determinism as det
    return det._scenarios()[0]


def test_scenario_cell_matches_golden_fingerprint():
    """A scenario cell run through the shard runner reproduces the
    exact record lines the serial determinism golden pins."""
    golden = json.loads(GOLDEN.read_text())["det-meiko"]
    for workers in (1, 2):
        report = run_grid(
            [ScenarioCell(cell_id="det", factory=_det_meiko)],
            workers=workers)
        cell = report.cells[0]
        assert cell.kind == "scenario"
        assert cell.detail["records"] == golden["records"]
        assert cell.detail["counters"] == golden["counters"]
        assert cell.detail["served_by"] == golden["served_by"]
        assert cell.detail["finished_at"] == golden["finished_at"]


def test_scenario_cell_presets_and_overrides():
    a = run_cell(ScenarioCell(cell_id="a", preset="table1",
                              overrides={"seed": 3}))
    b = run_cell(ScenarioCell(cell_id="b", preset="table1",
                              overrides={"seed": 3, "rps": 24}))
    assert a.fingerprint != b.fingerprint
    assert a.snapshot["counters"]["http.requests"] == a.n_requests


# -- guard rails -----------------------------------------------------------

def test_grid_input_validation():
    cells = make_fluid_grid(_base(100), seeds=[1, 1])
    with pytest.raises(ValueError, match="duplicate"):
        run_grid(cells)
    with pytest.raises(ValueError, match="at least one"):
        run_grid([])
    with pytest.raises(ValueError, match="preset/factory"):
        ScenarioCell(cell_id="x").build()
    with pytest.raises(ValueError, match="preset/factory"):
        ScenarioCell(cell_id="x", preset="table1",
                     factory=_det_meiko).build()
    with pytest.raises(TypeError, match="unknown cell"):
        run_cell("not a cell")


def test_grid_fingerprint_is_order_independent():
    fps = {"b": "2" * 64, "a": "1" * 64}
    assert grid_fingerprint(fps) == grid_fingerprint(dict(reversed(
        list(fps.items()))))
    assert grid_fingerprint(fps) != grid_fingerprint({"a": "1" * 64})
