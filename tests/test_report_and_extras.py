"""Tests for the report generator, balance index, and disk seek latency."""

import pytest

from repro.cluster import Disk, meiko_cs2
from repro.experiments.report import generate_report
from repro.experiments.runner import Scenario, run_scenario
from repro.sim import RandomStreams, Simulator
from repro.workload import burst_workload, uniform_corpus, uniform_sampler


# ----------------------------------------------------------------- report
def test_generate_report_subset(tmp_path):
    out = tmp_path / "EXP.md"
    text, all_hold = generate_report(fast=True, output=out,
                                     experiment_ids=["F1", "X4"])
    assert all_hold
    assert out.exists()
    content = out.read_text()
    assert content == text
    assert "## F1 —" in content and "## X4 —" in content
    assert "2/2 artifacts pass" in content
    assert "Fidelity policy" in content


def test_generate_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "R.md"
    code = main(["report", "-o", str(out), "--only", "f1"])
    assert code == 0
    assert "all shape checks hold: True" in capsys.readouterr().out
    assert out.exists()


# -------------------------------------------------------------- balance
def _run(policy, **kw):
    corpus = uniform_corpus(12, 1e5, 3)
    wl = burst_workload(3, 4.0, uniform_sampler(corpus, RandomStreams(1)))
    return run_scenario(Scenario(name="bal", spec=meiko_cs2(3),
                                 corpus=corpus, workload=wl, policy=policy,
                                 seed=1, **kw))


def test_balance_index_bounds():
    res = _run("round-robin")
    idx = res.balance_index()
    assert 1.0 / 3.0 <= idx <= 1.0


def test_balance_index_detects_concentration():
    # All requests to one pinned host -> one node serves everything.
    res = _run("round-robin", hosts_per_profile=1, dns_ttl=1000.0)
    assert res.balance_index() == pytest.approx(1.0 / 3.0, abs=0.01)


def test_balance_index_empty_run_is_one():
    from repro.experiments.runner import ScenarioResult
    res = _run("round-robin")
    res.metrics.records.clear()
    assert res.balance_index() == 1.0


# ---------------------------------------------------------- seek latency
def test_seek_latency_adds_fixed_cost():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6, seek_latency=0.012)
    log = []

    def go():
        yield disk.read(5e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(1.012)]


def test_seek_latency_zero_is_pure_bandwidth():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    log = []

    def go():
        yield disk.read(5e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(1.0)]


def test_seek_latency_validation():
    with pytest.raises(ValueError):
        Disk(Simulator(), bandwidth=1.0, seek_latency=-1.0)
