"""Tests for the sweb-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "T3", "--full"])
    assert args.command == "run" and args.experiment == "T3" and args.full
    args = parser.parse_args(["list"])
    assert args.command == "list"
    args = parser.parse_args(["serve", "--testbed", "now", "--rps", "4"])
    assert args.testbed == "now" and args.rps == 4


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "X3" in out


def test_cli_run_fast_experiment(capsys):
    assert main(["run", "F1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "shape holds: True" in out


def test_cli_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "T99"])


def test_cli_serve_small(capsys):
    code = main(["serve", "--nodes", "2", "--rps", "2", "--duration", "3",
                 "--file-size", "10000", "--files", "6"])
    assert code == 0
    out = capsys.readouterr().out
    assert "response:" in out
    assert "cpu shares:" in out


def test_cli_config_template_roundtrips(capsys):
    from repro.config import load_config
    assert main(["config-template"]) == 0
    out = capsys.readouterr().out
    config = load_config(out)
    assert config.spec.num_nodes == 6
    assert config.params.delta == pytest.approx(0.30)


def test_cli_replay(tmp_path, capsys):
    log = tmp_path / "access_log"
    log.write_text(
        'a.ucsb.edu - - [15/Apr/1996:09:00:00 +0000] '
        '"GET /x.html HTTP/1.0" 200 4096\n'
        'b.ucsb.edu - - [15/Apr/1996:09:00:01 +0000] '
        '"GET /y.gif HTTP/1.0" 200 20000\n'
        'a.ucsb.edu - - [15/Apr/1996:09:00:02 +0000] '
        '"GET /x.html HTTP/1.0" 200 4096\n')
    assert main(["replay", str(log), "--time-scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "replayed 3 requests" in out
    assert "completed 3" in out


def test_cli_replay_empty_log(tmp_path, capsys):
    log = tmp_path / "empty_log"
    log.write_text("not a log\n")
    assert main(["replay", str(log)]) == 1


# -- observability flags (docs/TRACING.md) ---------------------------------

def test_parser_trace_flags():
    parser = build_parser()
    args = parser.parse_args(["serve", "--trace-requests", "0",
                              "--trace-out", "t.json"])
    assert args.trace_requests == 0 and args.trace_out == "t.json"
    args = parser.parse_args(["trace"])
    assert args.command == "trace"
    assert args.experiment == "X10" and args.out == "trace.json"
    assert args.requests is None and args.seed == 7
    args = parser.parse_args(["trace", "T1", "-o", "x.json",
                              "--requests", "5", "--flame"])
    assert args.experiment == "T1" and args.out == "x.json"
    assert args.requests == 5 and args.flame


def test_parser_rejects_bad_trace_counts(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as err:
        parser.parse_args(["serve", "--trace-requests", "-1"])
    assert err.value.code == 2
    with pytest.raises(SystemExit) as err:
        parser.parse_args(["serve", "--trace-requests", "many"])
    assert err.value.code == 2
    with pytest.raises(SystemExit) as err:
        parser.parse_args(["trace", "--requests", "0"])  # must be >= 1
    assert err.value.code == 2
    capsys.readouterr()


def test_cli_trace_out_requires_trace_requests(capsys):
    assert main(["serve", "--trace-out", "t.json"]) == 2
    assert "--trace-out requires --trace-requests" in capsys.readouterr().err


def test_cli_serve_with_tracing(tmp_path, capsys):
    import json

    out = tmp_path / "serve_trace.json"
    code = main(["serve", "--nodes", "2", "--rps", "2", "--duration", "3",
                 "--file-size", "10000", "--files", "6",
                 "--trace-requests", "3", "--trace-out", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "traced 3 requests" in stdout
    doc = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_cli_serve_without_tracing_writes_nothing(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["serve", "--nodes", "2", "--rps", "2", "--duration", "3",
                 "--file-size", "10000", "--files", "6"])
    assert code == 0
    assert "traced" not in capsys.readouterr().out
    assert not (tmp_path / "trace.json").exists()


def test_cli_trace_small_run(tmp_path, capsys):
    import json

    out = tmp_path / "t1.json"
    code = main(["trace", "T1", "-o", str(out), "--duration", "3",
                 "--flame"])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "span sums reconcile with latency:" in stdout
    assert "request" in stdout           # flame rollup printed
    doc = json.loads(out.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "request" in names and "fulfill" in names


def test_cli_trace_unknown_experiment(tmp_path, capsys):
    assert main(["trace", "BOGUS", "-o", str(tmp_path / "x.json")]) == 2
    assert "unknown trace experiment" in capsys.readouterr().err
