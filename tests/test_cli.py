"""Tests for the sweb-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "T3", "--full"])
    assert args.command == "run" and args.experiment == "T3" and args.full
    args = parser.parse_args(["list"])
    assert args.command == "list"
    args = parser.parse_args(["serve", "--testbed", "now", "--rps", "4"])
    assert args.testbed == "now" and args.rps == 4


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "X3" in out


def test_cli_run_fast_experiment(capsys):
    assert main(["run", "F1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "shape holds: True" in out


def test_cli_run_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "T99"])


def test_cli_serve_small(capsys):
    code = main(["serve", "--nodes", "2", "--rps", "2", "--duration", "3",
                 "--file-size", "10000", "--files", "6"])
    assert code == 0
    out = capsys.readouterr().out
    assert "response:" in out
    assert "cpu shares:" in out


def test_cli_config_template_roundtrips(capsys):
    from repro.config import load_config
    assert main(["config-template"]) == 0
    out = capsys.readouterr().out
    config = load_config(out)
    assert config.spec.num_nodes == 6
    assert config.params.delta == pytest.approx(0.30)


def test_cli_replay(tmp_path, capsys):
    log = tmp_path / "access_log"
    log.write_text(
        'a.ucsb.edu - - [15/Apr/1996:09:00:00 +0000] '
        '"GET /x.html HTTP/1.0" 200 4096\n'
        'b.ucsb.edu - - [15/Apr/1996:09:00:01 +0000] '
        '"GET /y.gif HTTP/1.0" 200 20000\n'
        'a.ucsb.edu - - [15/Apr/1996:09:00:02 +0000] '
        '"GET /x.html HTTP/1.0" 200 4096\n')
    assert main(["replay", str(log), "--time-scale", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "replayed 3 requests" in out
    assert "completed 3" in out


def test_cli_replay_empty_log(tmp_path, capsys):
    log = tmp_path / "empty_log"
    log.write_text("not a log\n")
    assert main(["replay", str(log)]) == 1
