"""Tests for the experiment modules (fast, scaled-down runs).

T1 and S1 run max-rps searches that take ~a minute even in fast mode;
they are exercised through their building blocks here and in full by the
benchmark harness.
"""

import pytest

from repro.cluster import meiko_cs2
from repro.experiments import (
    ALL_EXPERIMENTS,
    run_experiment,
)
from repro.experiments.base import ExperimentReport
from repro.experiments.table1 import max_rps_cell
from repro.experiments.tables import ComparisonRow, render_comparison, render_table
from repro.experiments import paper_data


# --------------------------------------------------------------- registry
def test_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {
        "T1", "T2", "T3", "T4", "T5", "F1", "F2", "F3",
        "S1", "S2", "S3",
        "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10",
        "X11", "X12", "X13",
    }
    for module in ALL_EXPERIMENTS.values():
        assert callable(module.run)


def test_run_experiment_unknown_id():
    with pytest.raises(KeyError):
        run_experiment("T9")


def test_run_experiment_case_insensitive():
    report = run_experiment("f1")
    assert report.exp_id == "F1"


# --------------------------------------------------------- fast experiments
FAST_IDS = ("T2", "T3", "T4", "T5", "F1", "F2", "F3", "S2", "S3",
            "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10",
            "X11", "X12")


@pytest.mark.parametrize("exp_id", FAST_IDS)
def test_experiment_report_structure_and_shape(exp_id):
    report = run_experiment(exp_id, fast=True)
    assert isinstance(report, ExperimentReport)
    assert report.exp_id == exp_id
    assert report.table.strip()
    assert report.comparisons
    rendered = report.render()
    assert exp_id in rendered
    assert "paper vs measured" in rendered
    assert report.shape_holds, rendered


# ----------------------------------------------------- T1/S1 building block
def test_max_rps_cell_finds_positive_knee():
    best = max_rps_cell(meiko_cs2(2), 1.5e6, duration=8.0, cap=16)
    assert 1 <= best <= 16


# ---------------------------------------------------------------- rendering
def test_render_table_alignment_and_nan():
    text = render_table(["a", "bb"], [[1, 2.5], [float("nan"), None]],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "2.50" in text
    assert "-" in lines[-1]


def test_render_comparison_verdicts():
    rows = [ComparisonRow("x", 1, 2, "check", ok=True),
            ComparisonRow("y", 1, 2, "check", ok=False),
            ComparisonRow("z", 1, 2, "check", ok=None)]
    text = render_comparison(rows)
    assert "yes" in text and "NO" in text


def test_experiment_report_shape_holds_logic():
    report = ExperimentReport(exp_id="Z", title="t", table="x",
                              comparisons=[ComparisonRow("a", 1, 1, "", ok=True),
                                           ComparisonRow("b", 1, 1, "", ok=None)])
    assert report.shape_holds
    report.comparisons.append(ComparisonRow("c", 1, 1, "", ok=False))
    assert not report.shape_holds


# --------------------------------------------------------------- paper data
def test_paper_data_quality_flags():
    for value in (paper_data.TABLE5["preprocessing"],
                  paper_data.SKEWED_TEST["round-robin"],
                  paper_data.OVERHEAD["parsing"]):
        assert value.quality in ("exact", "approx", "garbled")
        assert value.value > 0


def test_paper_analysis_constants():
    assert paper_data.ANALYSIS["p"] == 6
    assert paper_data.ANALYSIS["total_rps_s33"].value == pytest.approx(17.3)
