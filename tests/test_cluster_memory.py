"""Unit tests for the page cache (repro.cluster.memory)."""

import pytest

from repro.cluster import PageCache


def test_miss_then_hit():
    cache = PageCache(100.0)
    assert not cache.lookup("/a")
    cache.insert("/a", 10.0)
    assert cache.lookup("/a")
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    cache = PageCache(30.0)
    cache.insert("/a", 10.0)
    cache.insert("/b", 10.0)
    cache.insert("/c", 10.0)
    cache.lookup("/a")          # /a becomes most-recent; /b is LRU
    cache.insert("/d", 10.0)    # evicts /b
    assert "/a" in cache and "/c" in cache and "/d" in cache
    assert "/b" not in cache
    assert cache.evictions == 1


def test_file_larger_than_cache_never_cached():
    cache = PageCache(10.0)
    assert not cache.insert("/huge", 20.0)
    assert "/huge" not in cache
    assert cache.used_bytes == 0.0


def test_eviction_frees_enough_space():
    cache = PageCache(100.0)
    for i in range(10):
        cache.insert(f"/f{i}", 10.0)
    cache.insert("/big", 55.0)
    assert cache.used_bytes <= 100.0
    assert "/big" in cache


def test_reinsert_updates_recency_not_size():
    cache = PageCache(30.0)
    cache.insert("/a", 10.0)
    cache.insert("/b", 10.0)
    cache.insert("/a", 10.0)   # refresh
    cache.insert("/c", 10.0)
    cache.insert("/d", 10.0)   # evicts /b (LRU), not /a
    assert "/a" in cache and "/b" not in cache


def test_invalidate():
    cache = PageCache(100.0)
    cache.insert("/a", 40.0)
    assert cache.invalidate("/a")
    assert not cache.invalidate("/a")
    assert cache.used_bytes == 0.0
    assert "/a" not in cache


def test_clear():
    cache = PageCache(100.0)
    cache.insert("/a", 10.0)
    cache.insert("/b", 10.0)
    cache.clear()
    assert len(cache) == 0
    assert cache.free_bytes == pytest.approx(100.0)


def test_zero_capacity_cache_always_misses():
    cache = PageCache(0.0)
    assert not cache.insert("/a", 1.0)
    assert not cache.lookup("/a")


def test_invalid_args():
    with pytest.raises(ValueError):
        PageCache(-1.0)
    cache = PageCache(10.0)
    with pytest.raises(ValueError):
        cache.insert("/a", -1.0)
