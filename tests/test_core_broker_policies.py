"""Unit tests for the broker and the scheduling policies."""

import pytest

from repro.core import SWEBCluster, make_policy, POLICY_NAMES
from repro.core.policies import (
    CPUOnlyPolicy,
    FileLocalityPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SWEBPolicy,
)
from repro.cluster import meiko_cs2


def make_cluster(policy="sweb", n=3, **kw):
    cluster = SWEBCluster(meiko_cs2(n), policy=policy, seed=1,
                          start_loadd=False, **kw)
    cluster.add_file("/on0.html", 1.5e6, home=0)
    cluster.add_file("/on1.html", 1.5e6, home=1)
    cluster.add_file("/on2.html", 1.5e6, home=2)
    return cluster


# ------------------------------------------------------------------- Broker
def test_broker_prefers_file_home_when_idle():
    cluster = make_cluster()
    broker = cluster.brokers[0]
    decision = broker.choose_server("/on2.html", client_latency=0.0)
    # With everyone idle, local service pays NFS (min(b1,b2) < b1) while
    # node 2 reads at full disk speed and redirection is free at 0 latency
    # minus t_connect... the cost model decides; the invariant is that the
    # winner's estimate is minimal.
    totals = {e.node: e.total for e in decision.estimates}
    assert decision.chosen in totals
    assert totals[decision.chosen] == min(totals.values())


def test_broker_avoids_loaded_node():
    cluster = make_cluster()
    broker = cluster.brokers[0]
    # Tell node 0's view that node 2 (the file home) is buried in work.
    from repro.core import LoadSnapshot
    cluster.views[0].update(LoadSnapshot(
        node=2, cpu_load=50.0, disk_load=50.0, net_load=0.0,
        cpu_speed=40e6, disk_bandwidth=5e6, timestamp=0.0))
    decision = broker.choose_server("/on2.html", client_latency=0.0)
    assert decision.chosen != 2


def test_broker_redirect_inflates_winner_load():
    cluster = make_cluster()
    broker = cluster.brokers[0]
    decision = broker.choose_server("/on2.html", client_latency=0.0)
    if decision.redirected:
        before_after = cluster.views[0].get(decision.chosen, 0.0)
        assert before_after.cpu_load > 0.0   # Δ-inflation applied
        assert broker.redirections == 1


def test_broker_counts_decisions():
    cluster = make_cluster()
    broker = cluster.brokers[1]
    broker.choose_server("/on1.html", client_latency=0.0)
    broker.choose_server("/on0.html", client_latency=0.0)
    assert broker.decisions == 2


def test_broker_missing_file_estimates_cpu_only():
    cluster = make_cluster()
    decision = cluster.brokers[0].choose_server("/nope.html",
                                                client_latency=0.0)
    assert decision.task.disk_bytes == 0.0


def test_broker_decision_estimate_lookup():
    cluster = make_cluster()
    decision = cluster.brokers[0].choose_server("/on0.html", client_latency=0.0)
    est = decision.estimate_for(0)
    assert est is not None and est.node == 0
    assert decision.estimate_for(99) is None


def test_broker_tie_prefers_local():
    cluster = make_cluster()
    # A non-existent tiny request: all-idle nodes tie on CPU cost; the
    # local node must win (no pointless redirection).
    decision = cluster.brokers[1].choose_server("/nope.html",
                                                client_latency=0.0)
    assert decision.chosen == 1


# ----------------------------------------------------------------- policies
def test_round_robin_always_local():
    cluster = make_cluster(policy="round-robin")
    policy = cluster.policy
    for node in range(3):
        d = policy.decide(cluster.brokers[node], "/on0.html", 0.0)
        assert d.chosen == node
        assert not d.redirected or node == 0


def test_file_locality_always_home():
    cluster = make_cluster(policy="file-locality")
    policy = cluster.policy
    for node in range(3):
        d = policy.decide(cluster.brokers[node], "/on2.html", 0.0)
        assert d.chosen == 2


def test_file_locality_missing_file_stays_local():
    cluster = make_cluster(policy="file-locality")
    d = cluster.policy.decide(cluster.brokers[1], "/nope.html", 0.0)
    assert d.chosen == 1


def test_cpu_only_picks_least_loaded():
    cluster = make_cluster(policy="cpu-only")
    from repro.core import LoadSnapshot
    for node, load in ((0, 5.0), (1, 0.0), (2, 9.0)):
        cluster.views[0].update(LoadSnapshot(
            node=node, cpu_load=load, disk_load=0.0, net_load=0.0,
            cpu_speed=40e6, disk_bandwidth=5e6, timestamp=0.0))
    d = cluster.policy.decide(cluster.brokers[0], "/on2.html", 0.0)
    assert d.chosen == 1


def test_random_policy_in_range():
    cluster = make_cluster(policy="random")
    seen = set()
    for _ in range(30):
        d = cluster.policy.decide(cluster.brokers[0], "/on0.html", 0.0)
        seen.add(d.chosen)
    assert seen <= {0, 1, 2}
    assert len(seen) >= 2


def test_make_policy_factory():
    for name in POLICY_NAMES:
        assert make_policy(name).name == name
    with pytest.raises(ValueError):
        make_policy("clairvoyant")


def test_policy_classes_expose_names():
    assert RoundRobinPolicy.name == "round-robin"
    assert FileLocalityPolicy.name == "file-locality"
    assert SWEBPolicy.name == "sweb"
    assert CPUOnlyPolicy.name == "cpu-only"
    assert RandomPolicy().name == "random"
    assert SWEBPolicy.consults_broker and CPUOnlyPolicy.consults_broker
    assert not RoundRobinPolicy.consults_broker
