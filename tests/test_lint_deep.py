"""Deep-tier lint: call-graph reachability, substream audit, purity.

Each deep rule triggers on a seeded fixture tree (and respects
suppressions and the baseline), the whole-program model resolves
aliases, re-exports and spawn sites, and — the tier-1 gate — the live
tree is ``--deep``-clean.
"""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import ALL_DEEP_RULES, Program, find_repo_root, run_deep
from repro.lint.deep import baseline_key, load_baseline
from repro.lint.engine import REPO_ROOT

REPO = Path(__file__).resolve().parent.parent

#: distinct names with the same crc32 key (1871814455) — the hazard the
#: stream-collision rule exists for
CRC32_TWINS = ("599430bd25", "f7633dd321")


def _tree(tmp_path, files):
    """Write a fixture package under tmp_path/src/repro; return its root."""
    root = tmp_path / "src" / "repro"
    base = {"__init__.py": '"""D."""\n'}
    for rel, code in {**base, **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code)
    return root


def _deep(tmp_path, files, rule=None):
    diags = run_deep(paths=[_tree(tmp_path, files)])
    if rule is not None:
        diags = [d for d in diags if d.rule == rule]
    return diags


# -- det-reach: hazards through alias + re-export -------------------------

_REACH_FILES = {
    "sim/__init__.py": '"""D."""\n',
    "sim/engine.py": (
        '"""D."""\n'
        'from ..experiments import helper\n\n\n'
        'class Simulator:\n'
        '    """D."""\n\n'
        '    def run(self):\n'
        '        """D."""\n'
        '        return helper()\n'),
    # re-export under a different name: the call graph must chase the
    # package __init__ alias back to the defining module
    "experiments/__init__.py": (
        '"""D."""\nfrom .driver import work_item as helper\n'),
    "experiments/driver.py": (
        '"""D."""\nimport time\n\n\n'
        'def work_item():\n'
        '    """D."""\n'
        '    return time.time()\n\n\n'
        'def idle():\n'
        '    """D."""\n'
        '    return time.time()\n'),
}


def test_det_reach_fires_through_alias_and_reexport(tmp_path):
    diags = _deep(tmp_path, _REACH_FILES, rule="det-reach-wall-clock")
    # work_item() is reachable from Simulator.run and flagged with its
    # provenance chain; idle() is dead code and stays exempt
    assert len(diags) == 1
    diag = diags[0]
    assert diag.path == "src/repro/experiments/driver.py"
    assert diag.line == 7
    assert "[sim-reachable:" in diag.message
    assert "Simulator.run" in diag.message


def test_det_reach_respects_suppression_comment(tmp_path):
    files = dict(_REACH_FILES)
    files["experiments/driver.py"] = (
        '"""D."""\nimport time\n\n\n'
        'def work_item():\n'
        '    """D."""\n'
        '    # host-time probe, excluded from fingerprints\n'
        '    # sweb-lint: disable=det-reach-wall-clock\n'
        '    return time.time()\n')
    assert _deep(tmp_path, files, rule="det-reach-wall-clock") == []


def test_det_reach_fires_via_spawn_site(tmp_path):
    files = {
        "sim/__init__.py": '"""D."""\n',
        "sim/engine.py": (
            '"""D."""\nfrom ..workload.procs import ticker\n\n\n'
            'class Simulator:\n'
            '    """D."""\n\n'
            '    def spawn(self, proc):\n'
            '        """D."""\n'
            '        return proc\n\n'
            '    def run(self):\n'
            '        """D."""\n'
            '        self.spawn(ticker())\n'),
        "workload/__init__.py": '"""D."""\n',
        "workload/procs.py": (
            '"""D."""\nimport time\n\n\n'
            'def ticker():\n'
            '    """D."""\n'
            '    yield time.time()\n'),
    }
    diags = _deep(tmp_path, files, rule="det-reach-wall-clock")
    assert len(diags) == 1
    assert diags[0].path == "src/repro/workload/procs.py"


# -- stream audit ---------------------------------------------------------

def test_stream_collision_detected(tmp_path):
    a, b = CRC32_TWINS
    files = {
        "workload/__init__.py": '"""D."""\n',
        "workload/gen.py": (
            '"""D."""\n\n\n'
            'def draw(rng):\n'
            '    """D."""\n'
            f'    return rng.stream("{a}"), rng.stream("{b}")\n'),
    }
    diags = _deep(tmp_path, files, rule="stream-collision")
    assert len(diags) == 1
    assert a in diags[0].message and b in diags[0].message


def test_stream_dynamic_name_flagged(tmp_path):
    files = {
        "workload/__init__.py": '"""D."""\n',
        "workload/gen.py": (
            '"""D."""\n\n\n'
            'def draw(rng, i):\n'
            '    """D."""\n'
            '    return rng.stream("shard-" + str(i))\n'),
    }
    diags = _deep(tmp_path, files, rule="stream-dynamic")
    assert len(diags) == 1


def test_stream_name_resolved_through_parameter_default(tmp_path):
    # mirrors the live samplers: the literal flows in via the factory's
    # parameter default, so nothing is dynamic and no collision exists
    files = {
        "workload/__init__.py": '"""D."""\n',
        "workload/gen.py": (
            '"""D."""\n\n\n'
            'def make(rng, stream="zipf"):\n'
            '    """D."""\n'
            '    return rng.stream(stream), rng.stream(stream + "-tail")\n'),
    }
    assert _deep(tmp_path, files) == []


# -- observation purity ---------------------------------------------------

_PURITY_FILES = {
    "obs/__init__.py": '"""D."""\n',
    "obs/sink.py": (
        '"""D."""\n\n'
        '_CACHE = {}\n\n\n'
        'class Span:\n'
        '    """D."""\n\n'
        '    def __init__(self):\n'
        '        """D."""\n'
        '        self.tags = {}\n\n\n'
        'def annotate(span: Span, key, value):\n'
        '    """D."""\n'
        '    span.tags[key] = value\n\n\n'
        'def remember(key, value):\n'
        '    """D."""\n'
        '    _CACHE[key] = value\n\n\n'
        'def scribble(state):\n'
        '    """D."""\n'
        '    state.count = 1\n'),
}


def test_purity_flags_global_and_foreign_param_writes(tmp_path):
    diags = _deep(tmp_path, _PURITY_FILES)
    rules = {d.rule for d in diags}
    # remember() writes module state; scribble() writes caller state;
    # annotate() mutates an obs-annotated Span and is the layer's job
    assert "purity-obs-global" in rules
    assert "purity-obs-param" in rules
    assert {d.line for d in diags} == {21, 26}


def test_purity_writeback_boundary(tmp_path):
    files = dict(_PURITY_FILES)
    files["web/__init__.py"] = '"""D."""\n'
    files["web/srv.py"] = (
        '"""D."""\nfrom ..obs.sink import Span, annotate\n\n\n'
        'def bad(conn):\n'
        '    """D."""\n'
        '    annotate(conn, "k", 1)\n\n\n'
        'def good():\n'
        '    """D."""\n'
        '    span = Span()\n'
        '    annotate(span, "k", 1)\n')
    diags = _deep(tmp_path, files, rule="purity-obs-writeback")
    # bad() hands a non-obs value to a mutating obs call; good()'s
    # locally-constructed Span is statically an obs handle
    assert [d.line for d in diags] == [7]
    assert diags[0].path == "src/repro/web/srv.py"


# -- baseline -------------------------------------------------------------

def test_baseline_filters_known_findings(tmp_path):
    a, b = CRC32_TWINS
    files = {
        "workload/__init__.py": '"""D."""\n',
        "workload/gen.py": (
            '"""D."""\n\n\n'
            'def draw(rng):\n'
            '    """D."""\n'
            f'    return rng.stream("{a}"), rng.stream("{b}")\n'),
    }
    root = _tree(tmp_path, files)
    found = run_deep(paths=[root])
    assert found
    ratchet = tmp_path / "baseline.json"
    ratchet.write_text(json.dumps(
        {"deep": [baseline_key(d) for d in found]}))
    assert run_deep(paths=[root], baseline=load_baseline(ratchet)) == []


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == frozenset()


# -- repo-root anchoring --------------------------------------------------

def test_find_repo_root_walks_to_marker(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.fake]\n")
    nested = tmp_path / "a" / "b" / "c.py"
    nested.parent.mkdir(parents=True)
    nested.write_text("x = 1\n")
    assert find_repo_root(nested) == tmp_path


def test_find_repo_root_falls_back_without_marker(tmp_path):
    # no pyproject.toml anywhere above tmp_path: the historical layout
    # fallback must still land on this repo's root
    assert find_repo_root(tmp_path / "orphan.py") == REPO
    assert REPO_ROOT == REPO


# -- the whole-program model ----------------------------------------------

def test_live_program_reaches_the_engine_entry_points():
    program = Program.build()
    assert program.is_reachable("repro.sim.engine.Simulator.run")
    assert "(entry point)" in program.explain("repro.sim.engine.Simulator.run")
    # a healthy graph: hundreds of functions, a sizeable reachable core
    assert len(program.functions) > 400
    assert len(program.sim_reachable) > 100


def test_deep_rules_have_unique_names():
    names = [rule.name for rule in ALL_DEEP_RULES]
    assert len(names) == len(set(names))
    for rule in ALL_DEEP_RULES:
        assert rule.name and rule.summary


# -- the gate: the live tree is deep-clean --------------------------------

def test_live_tree_is_deep_clean():
    diags = run_deep()
    assert diags == [], "\n".join(d.format() for d in diags)


def test_committed_baseline_is_empty():
    # the ratchet must only ever be introduced with a justification;
    # today the tree is clean and the committed baseline says so
    assert load_baseline() == frozenset()


# -- CLI ------------------------------------------------------------------

def test_cli_deep_exits_zero_on_clean_tree(capsys):
    assert cli_main(["lint", "--deep"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_list_rules_includes_deep(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_DEEP_RULES:
        assert rule.name in out
    assert "[deep]" in out
