"""Tests for the monitoring/ASCII-chart module (repro.sim.monitor)."""

import math

import pytest

from repro.sim import Monitor, Simulator, ascii_series, ascii_sparkline


def test_monitor_samples_at_period():
    sim = Simulator()
    counter = {"v": 0.0}

    def riser():
        while True:
            counter["v"] += 1.0
            yield sim.timeout(1.0)

    sim.spawn(riser())
    monitor = Monitor(sim, period=1.0).probe("v", lambda: counter["v"])
    monitor.start()
    sim.run(until=5.5)
    times, values = monitor.series("v")
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    assert len(values) == 6
    assert values == sorted(values)


def test_monitor_multiple_probes_and_stats():
    sim = Simulator()
    monitor = Monitor(sim, period=0.5)
    monitor.probe("two", lambda: 2.0).probe("ramp", lambda: sim.now)
    monitor.start()
    sim.run(until=3.0)
    assert monitor.mean("two") == pytest.approx(2.0)
    assert monitor.peak("ramp") == pytest.approx(2.5)


def test_monitor_duplicate_probe_rejected():
    monitor = Monitor(Simulator())
    monitor.probe("x", lambda: 0.0)
    with pytest.raises(ValueError):
        monitor.probe("x", lambda: 1.0)


def test_monitor_unknown_series():
    monitor = Monitor(Simulator())
    with pytest.raises(KeyError):
        monitor.series("nope")


def test_monitor_validation():
    with pytest.raises(ValueError):
        Monitor(Simulator(), period=0.0)


def test_monitor_render_contains_labels():
    sim = Simulator()
    monitor = Monitor(sim, period=1.0).probe("load", lambda: sim.now)
    monitor.start()
    sim.run(until=4.0)
    text = monitor.render()
    assert "load" in text and "mean" in text


def test_sparkline_shape():
    line = ascii_sparkline([0, 1, 2, 3, 4])
    assert len(line) == 5
    assert line[0] < line[-1]        # block characters sort by height


def test_sparkline_constant_and_empty():
    assert ascii_sparkline([]) == ""
    flat = ascii_sparkline([3, 3, 3])
    assert len(set(flat)) == 1


def test_sparkline_compresses_to_width():
    line = ascii_sparkline(range(1000), width=40)
    assert len(line) == 40


def test_ascii_series_renders():
    text = ascii_series([0, 1, 5, 2], height=4, label="t")
    assert "█" in text
    assert text.count("\n") >= 4
    assert "t" in text


def test_ascii_series_empty():
    assert ascii_series([]) == "(no data)"
