"""Tests for the two-level DNS resolver chain (repro.web.resolver)."""

import pytest

from repro.cluster import WANPath
from repro.sim import Simulator, Trace
from repro.web.resolver import AuthoritativeDNS, LocalResolver


def make_chain(ttl=30.0, latency=0.04, trace=None):
    sim = Simulator()
    auth = AuthoritativeDNS(sim, [0, 1, 2], ttl=ttl)
    resolver = LocalResolver(sim, auth,
                             wan=WANPath(latency=latency, bandwidth=1e6),
                             domain="rutgers.edu", trace=trace)
    return sim, auth, resolver


def resolve(sim, resolver):
    out = {}

    def go():
        out["address"] = yield resolver.resolve()
        out["when"] = sim.now

    sim.spawn(go())
    sim.run()
    return out


def test_cold_resolution_pays_wan_round_trip():
    sim, _auth, resolver = make_chain(latency=0.04)
    out = resolve(sim, resolver)
    assert out["address"] == 0
    # local hop (1 ms) + WAN RTT (80 ms) + answer latency (0.5 ms)
    assert out["when"] == pytest.approx(0.0815, abs=1e-4)
    assert resolver.upstream_queries == 1


def test_cached_resolution_is_local_only():
    sim, _auth, resolver = make_chain(ttl=100.0)
    resolve(sim, resolver)
    out2 = resolve(sim, resolver)
    assert out2["address"] == 0           # pinned by the cache
    assert resolver.cache_hits == 1
    assert resolver.upstream_queries == 1
    assert resolver.cache_hit_rate == pytest.approx(0.5)


def test_ttl_expiry_rotates_to_next_node():
    sim, _auth, resolver = make_chain(ttl=5.0)
    first = resolve(sim, resolver)

    def wait():
        yield sim.timeout(10.0)

    sim.spawn(wait())
    sim.run()
    second = resolve(sim, resolver)
    assert second["address"] != first["address"]


def test_flush_forces_upstream_query():
    sim, _auth, resolver = make_chain(ttl=1000.0)
    resolve(sim, resolver)
    resolver.flush()
    resolve(sim, resolver)
    assert resolver.upstream_queries == 2


def test_separate_domains_get_rotation():
    sim = Simulator()
    auth = AuthoritativeDNS(sim, [0, 1, 2], ttl=100.0)
    r1 = LocalResolver(sim, auth, domain="a.edu")
    r2 = LocalResolver(sim, auth, domain="b.edu")
    out1, out2 = {}, {}

    def go(resolver, out):
        out["address"] = yield resolver.resolve()

    sim.spawn(go(r1, out1))
    sim.run()
    sim.spawn(go(r2, out2))
    sim.run()
    assert out1["address"] != out2["address"]


def test_empty_zone_fails_resolution():
    sim = Simulator()
    auth = AuthoritativeDNS(sim, [0], ttl=0.0)
    auth.deregister(0)
    resolver = LocalResolver(sim, auth)
    failures = []

    def go():
        try:
            yield resolver.resolve()
        except LookupError:
            failures.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert failures


def test_zero_ttl_never_caches():
    sim, _auth, resolver = make_chain(ttl=0.0)
    resolve(sim, resolver)
    resolve(sim, resolver)
    assert resolver.upstream_queries == 2
    assert resolver.cache_hits == 0


def test_trace_records_dns_exchanges():
    trace = Trace()
    sim, _auth, resolver = make_chain(trace=trace)
    resolve(sim, resolver)
    resolve(sim, resolver)
    actions = trace.actions(category="dns")
    assert "query_authoritative" in actions
    assert "authoritative_answer" in actions
    assert "cache_hit" in actions


def test_register_and_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        AuthoritativeDNS(sim, [])
    with pytest.raises(ValueError):
        AuthoritativeDNS(sim, [0], ttl=-1.0)
    auth = AuthoritativeDNS(sim, [0])
    auth.register(1)
    auth.register(1)
    assert auth.addresses == [0, 1]
