"""sweb-lint: every rule triggers on a seeded fixture, respects
suppressions and the allowlist, and the live tree is lint-clean."""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    ALL_RULES,
    DEFAULT_CONFIG,
    lint_file,
    run_lint,
    rules_by_name,
)

REPO = Path(__file__).resolve().parent.parent


def _lint(tmp_path, rel, code, rule=None):
    """Write a fixture at src/repro/<rel> inside tmp_path and lint it."""
    path = tmp_path / "src" / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    diags = lint_file(path)
    if rule is not None:
        diags = [d for d in diags if d.rule == rule]
    return diags


# -- determinism ----------------------------------------------------------

def test_wall_clock_flagged_in_sim_reachable_code(tmp_path):
    diags = _lint(tmp_path, "cluster/x.py",
                  '"""D."""\nimport time\n\ndef f():\n    return time.time()\n',
                  rule="det-wall-clock")
    assert len(diags) == 1 and diags[0].line == 5


def test_wall_clock_resolves_aliases(tmp_path):
    code = ('"""D."""\nfrom datetime import datetime as dt\n\n'
            'def f():\n    return dt.now()\n')
    diags = _lint(tmp_path, "core/x.py", code, rule="det-wall-clock")
    assert len(diags) == 1 and "datetime.datetime.now" in diags[0].message


def test_wall_clock_not_flagged_outside_sim_layers(tmp_path):
    code = '"""D."""\nimport time\n\ndef f():\n    return time.time()\n'
    assert _lint(tmp_path, "experiments/x.py", code,
                 rule="det-wall-clock") == []


def test_sleep_flagged(tmp_path):
    code = '"""D."""\nfrom time import sleep\n\ndef f():\n    sleep(1)\n'
    diags = _lint(tmp_path, "web/x.py", code, rule="det-sleep")
    assert len(diags) == 1 and diags[0].line == 5


def test_global_random_import_and_call_flagged(tmp_path):
    code = ('"""D."""\nimport random\n\n'
            'def f():\n    return random.random()\n')
    diags = _lint(tmp_path, "faults/x.py", code, rule="det-global-random")
    assert [d.line for d in diags] == [2, 5]


def test_urandom_flagged(tmp_path):
    code = '"""D."""\nimport os\n\ndef f():\n    return os.urandom(8)\n'
    diags = _lint(tmp_path, "sim/x.py", code, rule="det-urandom")
    assert len(diags) == 1


def test_foreign_rng_flagged_but_rng_module_allowlisted(tmp_path):
    code = ('"""D."""\nimport numpy as np\n\n'
            'def f():\n    return np.random.default_rng(1)\n')
    assert len(_lint(tmp_path, "cluster/x.py", code,
                     rule="det-foreign-rng")) == 1
    # the sanctioned source of randomness is exempt by allowlist
    assert _lint(tmp_path, "sim/rng.py", code, rule="det-foreign-rng") == []


# -- layering -------------------------------------------------------------

def test_sim_must_not_import_upper_layers(tmp_path):
    code = '"""D."""\nfrom ..cluster import Node\n'
    diags = _lint(tmp_path, "sim/x.py", code, rule="layer-import")
    assert len(diags) == 1 and "repro.cluster" in diags[0].message


def test_cluster_must_not_import_web(tmp_path):
    code = '"""D."""\nfrom repro.web import Client\n'
    diags = _lint(tmp_path, "cluster/x.py", code, rule="layer-import")
    assert len(diags) == 1


def test_downward_and_type_checking_imports_allowed(tmp_path):
    code = ('"""D."""\nfrom typing import TYPE_CHECKING\n'
            'from ..sim import Simulator\n'
            'if TYPE_CHECKING:\n'
            '    from ..core.sweb import SWEBCluster\n')
    assert _lint(tmp_path, "web/x.py", code, rule="layer-import") == []


def test_experiments_deep_import_flagged(tmp_path):
    code = ('"""D."""\nfrom ..core.costmodel import CostParameters\n'
            'from ..cluster import meiko_cs2\n'
            'from .base import ExperimentReport\n')
    diags = _lint(tmp_path, "experiments/x.py", code,
                  rule="layer-deep-import")
    assert len(diags) == 1 and diags[0].line == 2


def test_obs_sits_below_every_other_layer(tmp_path):
    # obs is the pure bottom layer: importing anything above it is
    # a layering violation...
    code = '"""D."""\nfrom ..experiments import runner\n'
    diags = _lint(tmp_path, "obs/x.py", code, rule="layer-import")
    assert len(diags) == 1 and "repro.experiments" in diags[0].message
    code = '"""D."""\nfrom ..sim import Simulator\n'
    assert len(_lint(tmp_path, "obs/x.py", code, rule="layer-import")) == 1
    # ...while every layer above may publish into it.
    code = '"""D."""\nfrom ..obs import MetricsRegistry\n'
    for layer in ("sim", "cluster", "cache", "faults", "web", "core",
                  "workload", "experiments"):
        assert _lint(tmp_path, f"{layer}/x.py", code,
                     rule="layer-import") == []


def test_obs_subject_to_determinism_rules(tmp_path):
    # tracing timestamps must come from the sim clock, never the host's
    code = '"""D."""\nimport time\n\ndef f():\n    return time.time()\n'
    diags = _lint(tmp_path, "obs/x.py", code, rule="det-wall-clock")
    assert len(diags) == 1


# -- I/O hygiene ----------------------------------------------------------

def test_print_flagged_in_library_code(tmp_path):
    code = '"""D."""\ndef f():\n    print("hi")\n'
    assert len(_lint(tmp_path, "core/x.py", code, rule="io-print")) == 1


def test_print_allowed_in_cli_and_scripts(tmp_path):
    code = '"""D."""\ndef f():\n    print("hi")\n'
    assert _lint(tmp_path, "cli.py", code, rule="io-print") == []
    script = tmp_path / "scripts" / "tool.py"
    script.parent.mkdir(parents=True)
    script.write_text(code)
    assert [d for d in lint_file(script) if d.rule == "io-print"] == []


def test_file_writes_flagged_but_reads_allowed(tmp_path):
    code = ('"""D."""\nfrom pathlib import Path\n\n'
            'def f(p):\n'
            '    open(p).read()\n'              # read: fine
            '    open(p, "w").write("x")\n'     # write: flagged
            '    Path(p).write_text("x")\n')    # write: flagged
    diags = _lint(tmp_path, "workload/x.py", code, rule="io-file-write")
    assert [d.line for d in diags] == [6, 7]


# -- scheduling misuse ----------------------------------------------------

def test_heapq_flagged_outside_engine(tmp_path):
    code = ('"""D."""\nimport heapq\n\n'
            'def f(q):\n    heapq.heappush(q, 1)\n')
    diags = _lint(tmp_path, "core/x.py", code, rule="sched-heapq")
    assert [d.line for d in diags] == [2, 5]
    assert _lint(tmp_path, "sim/engine.py", code, rule="sched-heapq") == []


def test_engine_internals_flagged(tmp_path):
    code = '"""D."""\ndef f(sim):\n    return len(sim._queue)\n'
    diags = _lint(tmp_path, "web/x.py", code, rule="sched-engine-internals")
    assert len(diags) == 1 and "_queue" in diags[0].message


# -- ordering -------------------------------------------------------------

def test_set_iteration_flagged(tmp_path):
    code = ('"""D."""\ndef f(xs):\n'
            '    s = {x for x in xs}\n'
            '    for x in s:\n'
            '        use(x)\n')
    diags = _lint(tmp_path, "core/x.py", code, rule="order-set-iter")
    assert [d.line for d in diags] == [4]


def test_set_iteration_sorted_is_clean(tmp_path):
    code = ('"""D."""\ndef f(xs):\n'
            '    s = set(xs)\n'
            '    for x in sorted(s):\n'
            '        use(x)\n')
    assert _lint(tmp_path, "core/x.py", code, rule="order-set-iter") == []


def test_set_taint_cleared_by_rebinding(tmp_path):
    code = ('"""D."""\ndef f(xs):\n'
            '    s = frozenset(xs)\n'
            '    s = sorted(s)\n'
            '    return list(s)\n')
    assert _lint(tmp_path, "sim/x.py", code, rule="order-set-iter") == []


def test_set_materialisers_and_join_flagged(tmp_path):
    code = ('"""D."""\ndef f(xs):\n'
            '    return list({1, 2} | set(xs))\n')
    assert len(_lint(tmp_path, "cache/x.py", code,
                     rule="order-set-iter")) == 1
    code = ('"""D."""\ndef f(names: set):\n'
            '    return ",".join(names)\n')
    assert len(_lint(tmp_path, "cache/x.py", code,
                     rule="order-set-iter")) == 1


def test_set_order_independent_consumers_allowed(tmp_path):
    code = ('"""D."""\ndef f(xs):\n'
            '    s = set(xs)\n'
            '    return len(s), min(s), max(s), any(s), sorted(s)\n')
    assert _lint(tmp_path, "sim/x.py", code, rule="order-set-iter") == []


def test_env_read_flagged_in_det_layers_only(tmp_path):
    code = ('"""D."""\nimport os\n\n'
            'def f():\n    return os.environ["HOME"], os.getenv("X")\n')
    diags = _lint(tmp_path, "sim/x.py", code, rule="order-env-read")
    assert len(diags) == 2
    # experiments drive the host-facing side and may read the env
    assert _lint(tmp_path, "experiments/x.py", code,
                 rule="order-env-read") == []


def test_locale_read_flagged(tmp_path):
    code = ('"""D."""\nimport locale\n\n'
            'def f():\n    return locale.getlocale()\n')
    assert len(_lint(tmp_path, "web/x.py", code,
                     rule="order-env-read")) == 1


def test_multiprocessing_outside_shard_flagged(tmp_path):
    code = '"""D."""\nimport multiprocessing\n'
    diags = _lint(tmp_path, "workload/x.py", code, rule="order-mp-merge")
    assert len(diags) == 1 and "shard.py" in diags[0].message
    # the canonical merge file itself may import it...
    assert _lint(tmp_path, "experiments/shard.py", code,
                 rule="order-mp-merge") == []
    # ...but completion-order primitives are banned even there
    code = ('"""D."""\ndef f(pool, work):\n'
            '    return list(pool.imap_unordered(run, work))\n')
    assert len(_lint(tmp_path, "experiments/shard.py", code,
                     rule="order-mp-merge")) == 1


# -- docstrings -----------------------------------------------------------

def test_docstring_rules_flag_bare_module_and_class(tmp_path):
    diags = _lint(tmp_path, "core/x.py", "class Undocumented:\n    pass\n")
    rules = {d.rule for d in diags}
    assert {"doc-module", "doc-class"} <= rules


# -- suppressions ---------------------------------------------------------

def test_same_line_suppression(tmp_path):
    code = ('"""D."""\nimport time\n\n'
            'def f():\n'
            '    return time.time()  # sweb-lint: disable=det-wall-clock\n')
    assert _lint(tmp_path, "sim/x.py", code, rule="det-wall-clock") == []


def test_standalone_comment_suppresses_next_line(tmp_path):
    code = ('"""D."""\nimport time\n\n'
            'def f():\n'
            '    # justified: measuring host overhead, not simulated time\n'
            '    # sweb-lint: disable=det-wall-clock\n'
            '    return time.time()\n')
    assert _lint(tmp_path, "sim/x.py", code, rule="det-wall-clock") == []


def test_suppression_is_rule_specific(tmp_path):
    code = ('"""D."""\nimport time\n\n'
            'def f():\n'
            '    return time.time()  # sweb-lint: disable=io-print\n')
    assert len(_lint(tmp_path, "sim/x.py", code,
                     rule="det-wall-clock")) == 1


def test_disable_all_suppresses_everything(tmp_path):
    code = ('"""D."""\nimport time\n\n'
            'def f():\n'
            '    return time.time()  # sweb-lint: disable=all\n')
    assert _lint(tmp_path, "sim/x.py", code, rule="det-wall-clock") == []


# -- registry / config ----------------------------------------------------

def test_every_rule_has_name_summary_and_unique_id():
    names = [rule.name for rule in ALL_RULES]
    assert len(names) == len(set(names))
    for rule in ALL_RULES:
        assert rule.name and rule.summary


def test_rules_by_name_covers_all():
    assert set(rules_by_name()) == {r.name for r in ALL_RULES}


def test_allowlist_matching():
    assert DEFAULT_CONFIG.allows("io-print", "src/repro/cli.py")
    assert DEFAULT_CONFIG.allows("io-print", "scripts/bench_compare.py")
    assert not DEFAULT_CONFIG.allows("io-print", "src/repro/core/sweb.py")


# -- the gate: the live tree is lint-clean --------------------------------

def test_live_tree_is_lint_clean():
    diags = run_lint([REPO / "src", REPO / "scripts"])
    assert diags == [], "\n".join(d.format() for d in diags)


# -- CLI ------------------------------------------------------------------

def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert cli_main(["lint"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_lint_reports_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "cluster" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""D."""\nimport time\n\n'
                   'def f():\n    return time.time()\n')
    assert cli_main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/cluster/bad.py:5: det-wall-clock:" in out


def test_cli_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.name in out


def test_cli_lint_unparseable_file(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "sim" / "broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(:\n")
    assert cli_main(["lint", str(tmp_path)]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_cli_types_flag_degrades_without_mypy(capsys):
    # With mypy absent the pass is skipped with a notice; with mypy
    # present it must run and succeed — either way lint stays usable.
    code = cli_main(["lint", "--types"])
    captured = capsys.readouterr()
    if "skipped" in captured.err:
        assert code == 0
    else:
        assert code in (0, 1)
