"""Tests for the scenario runner and max-rps search."""

import pytest

from repro.cluster import meiko_cs2
from repro.experiments.runner import Scenario, ScenarioResult, find_max_rps, run_scenario
from repro.sim import RandomStreams
from repro.workload import burst_workload, uniform_corpus, uniform_sampler


def tiny_scenario(rps=2, duration=3.0, policy="sweb", n=2, size=1e4,
                  seed=1, **kw):
    spec = meiko_cs2(n)
    corpus = uniform_corpus(6, size, n)
    wl = burst_workload(rps, duration,
                        uniform_sampler(corpus, RandomStreams(seed)))
    return Scenario(name="tiny", spec=spec, corpus=corpus, workload=wl,
                    policy=policy, seed=seed, **kw)


def test_runner_reexport_shim_is_identical():
    """The deprecated runner re-exports must BE the workload objects.

    ``Scenario`` and ``DEFAULT_PROFILES`` moved to ``repro.workload``;
    the runner keeps importable aliases for pre-move callers.  Pinning
    identity (not equality) guarantees the shim cannot silently drift
    into a stale copy of the real definitions.
    """
    import repro.experiments.runner as runner
    import repro.workload as workload

    assert runner.Scenario is workload.Scenario
    assert runner.DEFAULT_PROFILES is workload.DEFAULT_PROFILES
    from repro.experiments import Scenario as exported_scenario
    assert exported_scenario is workload.Scenario


def test_run_scenario_completes_all_requests():
    res = run_scenario(tiny_scenario())
    assert res.metrics.total == 6
    assert res.completed == 6
    assert res.drop_rate == 0.0
    assert res.mean_response_time > 0
    assert res.finished_at > 0
    assert res.offered_rps == pytest.approx(2.0)


def test_run_scenario_sustained_rps():
    res = run_scenario(tiny_scenario(rps=3, duration=4.0))
    assert res.sustained_rps == pytest.approx(3.0)


def test_run_scenario_is_deterministic():
    r1 = run_scenario(tiny_scenario())
    r2 = run_scenario(tiny_scenario())
    assert r1.mean_response_time == r2.mean_response_time
    assert r1.cluster.sim.event_count == r2.cluster.sim.event_count


def test_scenario_with_policy_clones():
    sc = tiny_scenario()
    sc2 = sc.with_policy("round-robin")
    assert sc2.policy == "round-robin"
    assert sc.policy == "sweb"
    assert sc2.name.endswith("/round-robin")


def test_result_accessors():
    res = run_scenario(tiny_scenario())
    assert 0.0 <= res.cache_hit_rate() <= 1.0
    assert 0.0 <= res.remote_read_fraction() <= 1.0
    assert 0.0 <= res.redirection_rate <= 1.0
    assert isinstance(res.cpu_shares(), dict)
    assert "preprocessing" in res.phase_means()
    assert "tiny" in res.summary_line()


def test_unknown_client_in_workload_raises():
    sc = tiny_scenario()
    for a in sc.workload.arrivals:
        object.__setattr__(a, "client", "mars")
    with pytest.raises(KeyError):
        run_scenario(sc)


def test_find_max_rps_locates_knee():
    # One node, tiny backlog, short timeout: low capacity for 1.5MB files.
    def factory(rps):
        return tiny_scenario(rps=rps, duration=5.0, n=1, size=1.5e6,
                             backlog=8, client_timeout=20.0)

    best, results = find_max_rps(factory, cap=32)
    assert 1 <= best < 32
    # The knee is real: best passes, best+1 (if evaluated) fails.
    assert results[best].drop_rate <= 0.02
    failing = [r for r in results if results[r].drop_rate > 0.02]
    assert failing and min(failing) == best + 1


def test_find_max_rps_returns_zero_when_start_fails():
    def factory(rps):
        return tiny_scenario(rps=rps, duration=5.0, n=1, size=1.5e6,
                             backlog=1, client_timeout=1.0)

    best, _ = find_max_rps(factory, start=4, cap=8)
    assert best == 0


def test_find_max_rps_hits_cap_when_nothing_fails():
    def factory(rps):
        return tiny_scenario(rps=rps, duration=2.0, n=2, size=100.0)

    best, _ = find_max_rps(factory, cap=4)
    assert best == 4


def test_find_max_rps_validation():
    with pytest.raises(ValueError):
        find_max_rps(lambda rps: tiny_scenario(), start=0)
