"""scripts/bench_compare.py: regression gate over BENCH_*.json files.

Covers the compare verdicts (ok / improved / REGRESSION), error paths
(missing phase, malformed file), and ``--check`` — including the live
check against the committed ``BENCH_kernel.json`` at the repo root,
which the acceptance criteria require to validate cleanly.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "bench_compare.py"


def _load():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_doc(per_s_by_phase):
    phases = {
        name: {"units": 1000, "unit": "events",
               "wall_s": round(1000 / per_s, 6), "per_s": per_s}
        for name, per_s in per_s_by_phase.items()
    }
    headline = per_s_by_phase.get("timeout_chain", 0.0)
    return {
        "schema": "sweb-bench/1",
        "python": "3.11.7",
        "repeats": 3,
        "scale": 1.0,
        "phases": phases,
        "totals": {"wall_s": 1.0, "events_per_s": headline,
                   "peak_rss_kb": 40000},
    }


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


# -- compare() --------------------------------------------------------------

def test_improvement_and_ok_pass(tmp_path):
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0, "fair_share": 500.0})
    new = _bench_doc({"timeout_chain": 2000.0, "fair_share": 490.0})
    lines, ok = bc.compare(base, new)
    assert ok
    report = "\n".join(lines)
    assert "improved" in report and "2.00x" in report
    # 2 % slower is inside the 15 % budget
    assert "REGRESSION" not in report


def test_regression_beyond_threshold_fails(tmp_path):
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0})
    new = _bench_doc({"timeout_chain": 800.0})   # 20 % slower
    lines, ok = bc.compare(base, new)
    assert not ok
    assert any("REGRESSION" in line for line in lines)
    # ...but a looser budget tolerates it
    _, ok_loose = bc.compare(base, new, threshold=0.25)
    assert ok_loose


def test_missing_phase_in_new_raises(tmp_path):
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0, "fair_share": 500.0})
    new = _bench_doc({"timeout_chain": 1000.0})
    with pytest.raises(KeyError, match="fair_share"):
        bc.compare(base, new)


def test_extra_phase_in_new_is_noted_not_fatal(tmp_path):
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0})
    new = _bench_doc({"timeout_chain": 1000.0, "shiny_new": 1.0})
    lines, ok = bc.compare(base, new)
    assert ok
    assert any("shiny_new" in line for line in lines)


# -- tier-tagged phases (--scale S/M/L/XL runs) -----------------------------

def test_tier_phase_missing_from_new_is_noted_not_fatal(tmp_path):
    """A baseline recorded with --scale L carries fluid_stream@L and
    shard_grid@L; a plain bench rerun skips the tiers, which must not
    KeyError the gate."""
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0, "fluid_stream@L": 7e5,
                       "shard_grid@L": 6e5})
    new = _bench_doc({"timeout_chain": 1000.0})
    lines, ok = bc.compare(base, new)
    assert ok
    report = "\n".join(lines)
    assert "skipped" in report
    assert "fluid_stream@L" in report and "shard_grid@L" in report


def test_tier_phase_present_in_both_regresses_with_tier_message(tmp_path):
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0, "fluid_stream@L": 7e5})
    new = _bench_doc({"timeout_chain": 1000.0, "fluid_stream@L": 3e5})
    lines, ok = bc.compare(base, new)
    assert not ok
    regression = [ln for ln in lines if "REGRESSION" in ln]
    assert len(regression) == 1
    assert "[tier L]" in regression[0]
    # ...and a fast tier run still passes
    _, ok_fast = bc.compare(base, _bench_doc({"timeout_chain": 1000.0,
                                              "fluid_stream@L": 8e5}))
    assert ok_fast


def test_base_phase_missing_still_raises(tmp_path):
    """The tier tolerance must not weaken the gate for base phases."""
    bc = _load()
    base = _bench_doc({"timeout_chain": 1000.0, "fluid_stream@M": 7e5})
    new = _bench_doc({"fluid_stream@M": 7e5})
    with pytest.raises(KeyError, match="timeout_chain"):
        bc.compare(base, new)


def test_phase_tier_helper():
    bc = _load()
    assert bc.phase_tier("fluid_stream@XL") == "XL"
    assert bc.phase_tier("timeout_chain") is None


def test_per_phase_threshold_table():
    bc = _load()
    assert bc.phase_threshold("sched_tournament@L") == 0.20
    assert bc.phase_threshold("sched_tournament") == 0.20
    assert bc.phase_threshold("fluid_stream@L") == bc.DEFAULT_THRESHOLD
    # an explicit threshold beats the table
    assert bc.phase_threshold("sched_tournament@L", 0.05) == 0.05


def test_tournament_phase_gets_looser_budget():
    bc = _load()
    # 18 % slower: beyond the default 15 % budget, within the
    # tournament phase's 20 % one
    base = _bench_doc({"timeout_chain": 1000.0, "sched_tournament@L": 1000.0})
    new = _bench_doc({"timeout_chain": 1000.0, "sched_tournament@L": 820.0})
    _, ok = bc.compare(base, new)
    assert ok
    _, ok = bc.compare(base, new, threshold=0.15)   # uniform override
    assert not ok
    # the same 18 % drop on a default-budget phase still regresses
    slow = _bench_doc({"timeout_chain": 820.0, "sched_tournament@L": 1000.0})
    _, ok = bc.compare(base, slow)
    assert not ok


# -- CLI --------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    bc = _load()
    base = _write(tmp_path, "base.json", _bench_doc({"timeout_chain": 1000.0}))
    good = _write(tmp_path, "good.json", _bench_doc({"timeout_chain": 1100.0}))
    bad = _write(tmp_path, "bad.json", _bench_doc({"timeout_chain": 100.0}))
    assert bc.main([str(base), str(good)]) == 0
    assert bc.main([str(base), str(bad)]) == 1
    assert bc.main([str(base), str(tmp_path / "absent.json")]) == 2
    capsys.readouterr()


def test_cli_rejects_wrong_schema_and_missing_metrics(tmp_path, capsys):
    bc = _load()
    ok_doc = _bench_doc({"timeout_chain": 1000.0})
    base = _write(tmp_path, "base.json", ok_doc)

    wrong_schema = dict(ok_doc, schema="sweb-bench/999")
    target = _write(tmp_path, "schema.json", wrong_schema)
    assert bc.main([str(base), str(target)]) == 2

    no_per_s = json.loads(json.dumps(ok_doc))
    del no_per_s["phases"]["timeout_chain"]["per_s"]
    target = _write(tmp_path, "noper.json", no_per_s)
    assert bc.main([str(base), str(target)]) == 2
    capsys.readouterr()


def test_check_mode(tmp_path, capsys):
    bc = _load()
    good = _write(tmp_path, "g.json", _bench_doc({"timeout_chain": 1000.0}))
    assert bc.main(["--check", str(good)]) == 0
    assert bc.main(["--check", str(tmp_path / "absent.json")]) == 1
    garbled = tmp_path / "garbled.json"
    garbled.write_text('{"schema": "nope"}')
    assert bc.main(["--check", str(garbled)]) == 2
    capsys.readouterr()


def test_committed_bench_file_checks_clean(capsys):
    """The acceptance gate: BENCH_kernel.json at the repo root is
    present, schema-valid, and carries a non-zero kernel events/s."""
    bc = _load()
    assert bc.main(["--check"]) == 0
    out = capsys.readouterr().out
    assert "ok" in out
    doc = bc.load_bench(REPO / "BENCH_kernel.json")
    assert doc["totals"]["events_per_s"] > 0
