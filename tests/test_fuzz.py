"""The fuzz layer: generator, oracle, shrinker, harness, CLI.

Three kinds of evidence:

* the *generator* is a pure function of ``(root_seed, index, profile)``
  and every config survives a JSON round-trip — replay artifacts mean
  something;
* the *oracle* is sound (a known-good seeded campaign is green) and
  complete for each invariant (synthetic corruptions of the outcome
  evidence are caught under the right key);
* a *deliberately injected* invariant break — a shard merge whose
  snapshot comes back unsorted — is caught, shrunk to a minimal config
  that still fails the same way, and replays from its JSON artifact.
"""

import json
import time
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.fuzz import (
    FUZZ_FORMAT,
    FuzzConfig,
    SMOKE_PROFILE,
    case_artifact,
    case_seed,
    check_outcome,
    config_from_artifact,
    config_size,
    failure_key,
    generate_config,
    profile_by_name,
    replay_case,
    run_case,
    run_fuzz,
    shrink,
    shrink_candidates,
)
from repro.fuzz import executor
from repro.fuzz.executor import CaseOutcome


# ------------------------------------------------------------- generator
def test_generator_is_deterministic():
    for index in range(6):
        a = generate_config(7, index)
        b = generate_config(7, index)
        assert a == b
        a.validate()


def test_generator_varies_with_seed_and_index():
    seeds = {generate_config(7, i).seed for i in range(10)}
    assert len(seeds) == 10
    assert generate_config(7, 0) != generate_config(8, 0)
    assert case_seed(7, 0) != case_seed(7, 1) != case_seed(8, 1)


def test_config_json_round_trip():
    for index in range(8):
        config = generate_config(11, index)
        again = FuzzConfig.from_json(config.to_json())
        assert again == config


def test_profile_by_name():
    assert profile_by_name("smoke") is SMOKE_PROFILE
    assert profile_by_name("full").name == "full"
    with pytest.raises(KeyError):
        profile_by_name("nope")


def test_generator_covers_all_modes_and_extras():
    configs = [generate_config(7, i) for i in range(20)]
    modes = {c.mode for c in configs}
    assert modes == {"scenario", "fluid", "geo"}
    assert any(c.adversary for c in configs)
    assert any(c.faults for c in configs)
    assert any(c.heterogeneous for c in configs)
    geo = [c for c in configs if c.mode == "geo"]
    assert all(1 <= c.geo_sites <= 3 for c in geo)
    assert all(len(c.geo_edge_latencies) == c.geo_sites - 1 for c in geo)
    assert any(c.geo_budget_mb > 0 for c in geo)


# ------------------------------------------------------ oracle soundness
def test_known_good_cases_are_green():
    # one case of each mode through the real executor: the oracle must
    # hold on healthy runs (c0000 is scenario-mode, c0001 fluid-mode,
    # c0012 geo-mode)
    for index in (0, 1, 12):
        config = generate_config(7, index)
        assert check_outcome(run_case(config)) == ()


def _outcome(config, **changes):
    base = CaseOutcome(
        config=config, fingerprints=("f", "f"), offered=10, settled=10,
        completed=10, dropped=0, finished_at=1.0)
    return replace(base, **changes)


def _scenario_config():
    return FuzzConfig(case_id="t", mode="scenario", seed=1, nodes=2,
                      policy="sweb", rps=1, duration=2.0, n_files=8,
                      file_bytes=1e5)


def _fluid_config():
    return FuzzConfig(case_id="t", mode="fluid", seed=1, nodes=2,
                      policy="sweb", rate=400.0, n_requests=1000)


@pytest.mark.parametrize("changes,invariant", [
    ({"fingerprints": ("a", "b")}, "determinism"),
    ({"grid_fingerprints": ("x", "y")}, "shard-merge"),
    ({"merged_snapshots": ('{"a":1}', '{"a":2}')}, "shard-merge"),
    ({"settled": 9, "completed": 9}, "starvation"),
    ({"dropped": 3}, "conservation"),
    ({"trace_failures": ("req 3: stage mismatch",)}, "trace"),
])
def test_oracle_catches_each_synthetic_corruption(changes, invariant):
    violations = check_outcome(_outcome(_scenario_config(), **changes))
    assert violations
    assert failure_key(violations) == invariant


def test_oracle_checks_cache_byte_accounting():
    bad = {"node": 0.0, "used_bytes": 9e9, "capacity_bytes": 1e6,
           "entry_bytes": 1.0, "hits": -1.0, "misses": 0.0,
           "evictions": 0.0}
    violations = check_outcome(_outcome(_scenario_config(), caches=(bad,)))
    details = "\n".join(str(v) for v in violations)
    assert failure_key(violations) == "cache-bytes"
    assert "capacity" in details and "negative hits" in details


def test_oracle_fluid_conservation():
    violations = check_outcome(
        _outcome(_fluid_config(), completed=9, settled=10, offered=10))
    assert failure_key(violations) == "conservation"


# ------------------------------------------------------- shrinker algebra
def test_candidates_strictly_shrink_the_size_measure():
    for index in range(12):
        config = generate_config(3, index)
        for candidate in shrink_candidates(config):
            assert config_size(candidate) < config_size(config)


def test_shrink_requires_a_failing_config():
    with pytest.raises(ValueError):
        shrink(generate_config(7, 0), lambda c: None)


_idx = st.integers(min_value=0, max_value=60)
_root = st.integers(min_value=0, max_value=40)


@given(_root, _idx)
@settings(max_examples=60, deadline=None)
def test_shrink_is_idempotent_and_preserves_key(root_seed, index):
    config = generate_config(root_seed, index)

    def probe(c):
        return "starvation"  # every config "fails" the same way

    small, key = shrink(config, probe)
    assert key == "starvation" and probe(small) == key
    again, _ = shrink(small, probe, key=key)
    assert again == small  # idempotent: a minimum cannot shrink further
    assert config_size(small) <= config_size(config)
    small.validate()


@given(_root, _idx)
@settings(max_examples=40, deadline=None)
def test_shrink_keeps_the_failure_inducing_feature(root_seed, index):
    config = generate_config(root_seed, index)

    def probe(c):
        return "trace" if c.faults else None

    if not config.faults:
        with pytest.raises(ValueError):
            shrink(config, probe)
        return
    small, key = shrink(config, probe)
    assert small.faults, "shrinking must not lose the failing feature"
    assert probe(small) == key == "trace"
    # minimal: no valid candidate still fails
    for candidate in shrink_candidates(small):
        try:
            candidate.validate()
        except ValueError:
            continue
        assert probe(candidate) != key


# ------------------------------- the injected break, end to end (tentpole)
_real_run_case = executor.run_case


def _unsorted_merge_runner(config):
    """A runner whose 2-worker shard merge comes back unsorted."""
    outcome = _real_run_case(config)
    if config.mode != "fluid":
        return outcome
    serial, pooled = outcome.merged_snapshots
    scrambled = json.dumps(json.loads(pooled), sort_keys=False,
                           separators=(";", "="))
    return replace(outcome, merged_snapshots=(serial, scrambled))


def test_injected_merge_break_is_caught_shrunk_and_replayable(tmp_path):
    report = run_fuzz(root_seed=7, n_cases=2,
                      runner=_unsorted_merge_runner)
    assert not report.ok
    [failure] = report.failures
    assert failure.config.mode == "fluid"
    assert failure.key == "shard-merge"
    assert "FAIL shard-merge" in failure.summary_line()

    # shrunk: still failing the same invariant, and locally minimal
    shrunk = failure.shrunk
    assert shrunk is not None
    assert config_size(shrunk) <= config_size(failure.config)
    probe = lambda c: failure_key(check_outcome(_unsorted_merge_runner(c)))
    assert probe(shrunk) == "shard-merge"
    for candidate in shrink_candidates(shrunk):
        try:
            candidate.validate()
        except ValueError:
            continue
        assert probe(candidate) != "shard-merge"

    # the artifact round-trips and replays to the same verdict
    path = tmp_path / "case.json"
    path.write_text(json.dumps(case_artifact(failure)))
    data = json.loads(path.read_text())
    assert data["format"] == FUZZ_FORMAT
    assert data["invariant"] == "shard-merge"
    loaded = config_from_artifact(data)
    assert loaded == shrunk
    bad = replay_case(loaded, runner=_unsorted_merge_runner)
    assert not bad.ok and bad.key == "shard-merge"
    # ...and the same case is green under the real executor: the bug was
    # in the (injected) merge, not the config
    assert replay_case(loaded).ok


# --------------------------------------------------- tier-1 smoke campaign
def test_smoke_campaign_is_green_and_fast():
    started = time.perf_counter()
    report = run_fuzz(root_seed=7, n_cases=20)
    wall = time.perf_counter() - started
    assert report.n_cases == 20
    assert report.ok, "\n".join(report.summary_lines())
    assert report.summary_lines()[-1].endswith("20/20 cases green")
    assert wall < 60.0


# ----------------------------------------------------------------- CLI
def test_cli_fuzz_smoke(capsys):
    assert cli_main(["fuzz", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "20/20 cases green" in out


def test_cli_fuzz_failure_writes_artifact_and_replays(tmp_path, capsys,
                                                      monkeypatch):
    monkeypatch.setattr(executor, "run_case", _unsorted_merge_runner)
    artifact = tmp_path / "bad.json"
    rc = cli_main(["fuzz", "--seed", "7", "--cases", "2",
                   "-o", str(artifact)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL shard-merge" in out
    assert artifact.exists()
    # replay under the still-broken executor reproduces the failure...
    assert cli_main(["fuzz", "--replay", str(artifact)]) == 1
    assert "shard-merge" in capsys.readouterr().out
    monkeypatch.undo()
    # ...and the shipped executor shows the config itself is healthy
    assert cli_main(["fuzz", "--replay", str(artifact)]) == 0
