"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(2.5)
        log.append(sim.now)
        yield sim.timeout(1.5)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [2.5, 4.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for i in range(5):
        sim.spawn(proc(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent(results):
        value = yield sim.spawn(child())
        results.append(value)

    results = []
    sim.spawn(parent(results))
    sim.run()
    assert results == [42]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run(until=3.5)
    assert sim.now == 3.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    value = sim.run(until=sim.spawn(child()))
    assert value == "done"
    assert sim.now == 2.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    woke = []

    def waiter():
        value = yield ev
        woke.append((sim.now, value))

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed("hello")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert woke == [(3.0, "hello")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_failed_event_throws_into_waiter():
    sim = Simulator()
    caught = []

    def waiter(ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = sim.event()
    sim.spawn(waiter(ev))

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.spawn(trigger())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("explode")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="explode"):
        sim.run()


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_waiting_on_already_processed_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("早い")
    log = []

    def late_waiter():
        yield sim.timeout(5.0)
        value = yield ev
        log.append((sim.now, value))

    sim.spawn(late_waiter())
    sim.run()
    assert log == [(5.0, "早い")]


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as inter:
            log.append(("interrupted", sim.now, inter.cause))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert log == [("interrupted", 2.0, "wake up")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt()

    sim.spawn(interrupter())
    sim.run()
    assert log == [3.0]


def test_anyof_first_wins():
    sim = Simulator()
    results = []

    def proc():
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(2.0, value="fast")
        got = yield t1 | t2
        results.append((sim.now, list(got.values())))

    sim.spawn(proc())
    sim.run()
    assert results == [(2.0, ["fast"])]


def test_allof_waits_for_all():
    sim = Simulator()
    results = []

    def proc():
        t1 = sim.timeout(5.0, value="a")
        t2 = sim.timeout(2.0, value="b")
        got = yield t1 & t2
        results.append((sim.now, sorted(got.values())))

    sim.spawn(proc())
    sim.run()
    assert results == [(5.0, ["a", "b"])]


def test_allof_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_condition_failure_propagates():
    sim = Simulator()
    caught = []

    def proc(ev1, ev2):
        try:
            yield AllOf(sim, [ev1, ev2])
        except RuntimeError as exc:
            caught.append(str(exc))

    ev1, ev2 = sim.event(), sim.event()
    sim.spawn(proc(ev1, ev2))

    def failer():
        yield sim.timeout(1.0)
        ev1.fail(RuntimeError("part failed"))

    sim.spawn(failer())
    sim.run()
    assert caught == ["part failed"]


def test_event_count_is_deterministic():
    def build():
        sim = Simulator()

        def proc(i):
            yield sim.timeout(i * 0.5)
            yield sim.timeout(1.0)

        for i in range(10):
            sim.spawn(proc(i))
        sim.run()
        return sim.event_count, sim.now

    assert build() == build()


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_step_on_empty_queue_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == pytest.approx(0.0) or sim.peek() <= 4.0


def test_nested_processes_three_deep():
    sim = Simulator()

    def leaf():
        yield sim.timeout(1.0)
        return 1

    def middle():
        v = yield sim.spawn(leaf())
        yield sim.timeout(1.0)
        return v + 1

    def root(out):
        v = yield sim.spawn(middle())
        out.append((sim.now, v))

    out = []
    sim.spawn(root(out))
    sim.run()
    assert out == [(2.0, 2)]
