"""The geo tier (docs/GEO.md): spec validation, the pure placement
planner (Hypothesis-pinned guarantees), the edge file system's WAN read
path, geo-affinity routing, and end-to-end determinism of ``run_geo``.

The three planner properties mirror the docstring contract of
:func:`repro.geo.plan_placement`:

* placed bytes per site never exceed that site's budget;
* no ``(path, site)`` pair appears twice and no copy is planned to a
  site that already holds the file;
* the plan is a pure function of the heat snapshot — same inputs, same
  plan, inputs unmodified.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import (
    GeoDNS,
    GeoScenario,
    GeoSpec,
    GeoSystem,
    SiteSpec,
    WanLink,
    geo3,
    plan_placement,
    run_geo,
)
from repro.workload.corpus import uniform_corpus

KB, MB = 1e3, 1e6


# ----------------------------------------------------------- planner props
@st.composite
def placement_inputs(draw):
    ids = draw(st.lists(st.integers(0, 999), unique=True,
                        min_size=1, max_size=15))
    paths = [f"/geo/f{i:03d}.html" for i in ids]
    heat = {p: draw(st.floats(0.0, 1e9, allow_nan=False,
                              allow_infinity=False)) for p in paths}
    sizes = {p: draw(st.floats(1 * KB, 1 * MB)) for p in paths}
    edges = [f"site{i}" for i in range(draw(st.integers(1, 4)))]
    budgets = {s: draw(st.floats(0.0, 3 * MB)) for s in edges}
    existing = {}
    for p in paths:
        if draw(st.booleans()):
            holders = draw(st.lists(st.sampled_from(edges), unique=True,
                                    max_size=len(edges)))
            if holders:
                existing[p] = set(holders)
    skew = draw(st.floats(1.0, 3.0))
    max_placements = draw(st.one_of(st.none(), st.integers(1, 10)))
    return heat, sizes, edges, budgets, existing, skew, max_placements


@given(inputs=placement_inputs())
@settings(max_examples=150, deadline=None)
def test_placement_respects_budgets(inputs):
    heat, sizes, edges, budgets, existing, skew, max_placements = inputs
    plan = plan_placement(heat, sizes, edges, budgets, existing=existing,
                          skew=skew, max_placements=max_placements)
    placed = {site: 0.0 for site in edges}
    for path, site in plan:
        placed[site] += sizes[path]
    for site in edges:
        assert placed[site] <= budgets[site] + 1e-6
    if max_placements is not None:
        assert len(plan) <= max_placements


@given(inputs=placement_inputs())
@settings(max_examples=150, deadline=None)
def test_placement_never_duplicates_a_copy(inputs):
    heat, sizes, edges, budgets, existing, skew, max_placements = inputs
    plan = plan_placement(heat, sizes, edges, budgets, existing=existing,
                          skew=skew, max_placements=max_placements)
    assert len(set(plan)) == len(plan)
    for path, site in plan:
        assert site not in existing.get(path, set())
        assert path in heat and site in edges


@given(inputs=placement_inputs())
@settings(max_examples=100, deadline=None)
def test_placement_is_pure(inputs):
    heat, sizes, edges, budgets, existing, skew, max_placements = inputs
    frozen = copy.deepcopy(inputs)
    first = plan_placement(heat, sizes, edges, budgets, existing=existing,
                           skew=skew, max_placements=max_placements)
    second = plan_placement(heat, sizes, edges, budgets, existing=existing,
                            skew=skew, max_placements=max_placements)
    assert first == second
    assert inputs == frozen  # the planner never mutates its inputs


def test_placement_rejects_bad_skew():
    with pytest.raises(ValueError):
        plan_placement({"/a": 1.0}, {"/a": 1.0}, ["e"], {"e": 1.0}, skew=0.5)


def test_placement_fans_hot_file_to_every_edge():
    # One file far above the mean earns a copy on every edge.
    heat = {"/hot": 1000.0}
    heat.update({f"/cold{i}": 10.0 for i in range(9)})
    sizes = {p: 10 * KB for p in heat}
    edges = ["e0", "e1", "e2"]
    plan = plan_placement(heat, sizes, edges, {s: MB for s in edges})
    assert {(p, s) for p, s in plan if p == "/hot"} == \
        {("/hot", s) for s in edges}


# ------------------------------------------------------------------- spec
def test_geospec_requires_complete_link_matrix():
    a = SiteSpec("a", geo3().site("origin").cluster)
    b = SiteSpec("b", geo3().site("west").cluster)
    c = SiteSpec("c", geo3().site("east").cluster)
    link = WanLink(latency=0.01, bandwidth=MB)
    with pytest.raises(ValueError, match="missing WAN links"):
        GeoSpec(name="bad", sites=(a, b, c),
                links=(("a", "b", link), ("a", "c", link)), origin="a")


def test_geospec_rejects_duplicates_and_bad_origin():
    a = SiteSpec("a", geo3().site("origin").cluster)
    link = WanLink(latency=0.01, bandwidth=MB)
    with pytest.raises(ValueError, match="duplicate site"):
        GeoSpec(name="bad", sites=(a, a), links=(("a", "a", link),),
                origin="a")
    with pytest.raises(ValueError, match="not a site"):
        GeoSpec(name="bad", sites=(a,), links=(), origin="zzz")
    with pytest.raises(ValueError):
        WanLink(latency=-1.0, bandwidth=MB)
    with pytest.raises(ValueError):
        WanLink(latency=0.0, bandwidth=0.0)


def test_geo3_shape_and_lookups():
    spec = geo3()
    assert spec.site_names == ("origin", "west", "east")
    assert spec.edge_names == ("west", "east")
    assert spec.link("west", "origin") is spec.link("origin", "west")
    assert spec.link("west", "east").latency == pytest.approx(
        spec.link("origin", "west").latency
        + spec.link("origin", "east").latency)
    # west is nearer to the origin than east, so it spills there first.
    assert spec.nearest_order("west") == ("origin", "east")
    assert spec.nearest_order("origin") == ("west", "east")
    with pytest.raises(ValueError):
        spec.link("west", "west")


# ---------------------------------------------------------------- routing
class _FakeNode:
    def __init__(self, load=0.0, alive=True):
        self._load = load
        self.alive = alive

    def cpu_load(self):
        return self._load


class _FakeCluster:
    def __init__(self, *loads, alive=True):
        self.nodes = [_FakeNode(load, alive=alive) for load in loads]


def _dns(graceful, loads=None, **kwargs):
    spec = geo3()
    loads = loads or {}
    clusters = {name: _FakeCluster(*loads.get(name, (0.0, 0.0)))
                for name in spec.site_names}
    return GeoDNS(spec, clusters, graceful=graceful, **kwargs)


def test_dns_routes_home_when_healthy():
    dns = _dns(graceful=True)
    assert dns.route("east") == "east"
    assert dns.spills == 0 and dns.unroutable == 0


def test_dns_partition_paper_faithful_loses_the_population():
    dns = _dns(graceful=False)
    dns.partition_site("east")
    assert dns.route("east") is None
    assert dns.route("west") == "west"  # blast radius is one site
    assert dns.unroutable == 1
    dns.heal_site("east")
    assert dns.route("east") == "east"


def test_dns_partition_graceful_spills_to_nearest():
    dns = _dns(graceful=True)
    dns.partition_site("east")
    assert dns.route("east") == "origin"  # east's nearest healthy site
    assert dns.partition_spills == 1
    dns.partition_site("origin")
    assert dns.route("east") == "west"  # next-nearest still up
    dns.partition_site("west")
    assert dns.route("east") is None  # everything dark
    assert dns.unroutable == 1


def test_dns_overload_spill_needs_graceful_and_headroom():
    loads = {"east": (9.0, 9.0), "origin": (1.0, 1.0), "west": (1.0, 1.0)}
    assert _dns(graceful=False, loads=loads).route("east") == "east"
    dns = _dns(graceful=True, loads=loads, spill_threshold=6.0)
    assert dns.route("east") == "origin"
    assert dns.spills == 1
    # No site under the threshold: stay home rather than bounce around.
    hot = {name: (9.0, 9.0) for name in ("origin", "west", "east")}
    dns = _dns(graceful=True, loads=hot)
    assert dns.route("east") == "east"


def test_dns_validates_sites_and_threshold():
    dns = _dns(graceful=True)
    with pytest.raises(KeyError):
        dns.route("mars")
    with pytest.raises(KeyError):
        dns.partition_site("mars")
    with pytest.raises(ValueError):
        _dns(graceful=True, spill_threshold=0.0)


# ---------------------------------------------------- edge fs / WAN reads
def _edge_read_twice(budget):
    system = GeoSystem(edge_budget_bytes=budget, start_daemons=False)
    corpus = uniform_corpus(6, 50 * KB, 4, prefix="/geo")
    system.install_corpus(corpus)
    fs = system.edge_fs["west"]
    path = corpus.documents[0].path
    outcomes = []

    def reader():
        first = yield fs.read(path, at_node=0)
        outcomes.append(first)
        second = yield fs.read(path, at_node=0)
        outcomes.append(second)

    system.run(until=system.sim.spawn(reader(), name="t.reader"))
    return system, fs, outcomes


def test_edge_miss_crosses_wan_then_hits_cache():
    system, fs, outcomes = _edge_read_twice(budget=16 * MB)
    assert [o.source for o in outcomes] == ["wan", "cache"]
    assert fs.wan_reads == 1 and fs.edge_hits == 1
    assert fs.wan_bytes == pytest.approx(50 * KB)
    assert fs.edge_installs == 1
    assert fs.hit_rate() == pytest.approx(0.5)
    # The transfer took real simulated time: latency + bytes/bandwidth.
    assert system.sim.now > geo3().link("origin", "west").latency


def test_zero_budget_edge_never_caches():
    _system, fs, outcomes = _edge_read_twice(budget=0.0)
    assert [o.source for o in outcomes] == ["wan", "wan"]
    assert fs.wan_reads == 2 and fs.edge_hits == 0
    assert fs.budget_rejections == 2
    assert fs.resident_replica_bytes() == 0.0


def test_placement_daemon_ships_hot_files_within_budget():
    system = GeoSystem(edge_budget_bytes=16 * MB, start_daemons=False)
    corpus = uniform_corpus(8, 50 * KB, 4, prefix="/geo")
    system.install_corpus(corpus)
    hot = corpus.documents[0].path
    for _ in range(40):
        system.heat.record(hot, 50 * KB)
    for doc in corpus.documents[1:]:
        system.heat.record(doc.path, 50 * KB)
    planned = system.placementd.run_cycle()
    assert {p for p, _site in planned} == {hot}
    assert {site for _p, site in planned} == {"west", "east"}
    system.run(until=system.sim.timeout(5.0))
    assert system.total_placements() == 2
    for fs in system.edge_fs.values():
        assert fs.resident_replica_bytes() == pytest.approx(50 * KB)
    # Replanning is a no-op: both edges already hold the only hot file.
    assert system.placementd.run_cycle() == []


# --------------------------------------------------------------- scenario
def _tiny(**overrides):
    base = dict(name="t-geo", n_files=20, hot_files=5, file_bytes=60 * KB,
                rps=15.0, duration=4.0, seed=3)
    base.update(overrides)
    return GeoScenario(**base)


def test_run_geo_is_deterministic():
    first, second = run_geo(_tiny()), run_geo(_tiny())
    assert first.summary_line() == second.summary_line()
    assert first.wan_bytes == second.wan_bytes
    assert first.finished_at == second.finished_at
    for site in ("origin", "west", "east"):
        assert (first.population(site).response_times
                == second.population(site).response_times)


def test_run_geo_populations_tally_offered():
    result = run_geo(_tiny())
    total = sum(p.offered for p in result.populations.values())
    assert total == int(15.0 * 4.0)
    for pop in result.populations.values():
        assert pop.completed + pop.dropped + pop.lost <= pop.offered
        assert pop.lost == 0


def test_run_geo_partition_graceful_vs_paper_faithful():
    kwargs = dict(partition_site="east", partition_window=(1.0, 3.0))
    plain = run_geo(_tiny(graceful=False, **kwargs))
    east = plain.population("east")
    assert east.lost > 0 and plain.unroutable == east.lost
    assert plain.population("west").lost == 0

    graceful = run_geo(_tiny(graceful=True, **kwargs))
    east = graceful.population("east")
    assert east.lost == 0 and east.spilled > 0
    assert graceful.partition_spills == east.spilled
