"""Unit tests for the cooperative-cache subsystem (repro.cache).

Covers the directory (hot-set ranking, TTL staleness, freshest-wins
updates), the heat counters, the replication daemon's planner and copy
machinery, the cache-aware ``t_data`` term, and the replica/peer-cache
read paths in the distributed file system.
"""

import pytest

from repro.cache import (
    CacheDirectory,
    CacheReport,
    FileHeat,
    ReplicationDaemon,
    hot_set,
)
from repro.cluster import meiko_cs2
from repro.core import CostModel, CostParameters, LoadSnapshot, SWEBCluster
from repro.core.oracle import TaskEstimate


# ---------------------------------------------------------------- hot_set
def test_hot_set_ranks_by_bytes_times_recency():
    # LRU order oldest-first: recency rank is the position + 1.
    entries = [("/old-big", 10.0), ("/mid", 6.0), ("/new-small", 4.0)]
    # scores: old-big 10*1=10, mid 6*2=12, new-small 4*3=12 (tie on path)
    assert hot_set(entries, 3) == ("/mid", "/new-small", "/old-big")
    assert hot_set(entries, 2) == ("/mid", "/new-small")
    assert hot_set(entries, 0) == ()
    assert hot_set([], 4) == ()


def test_hot_set_is_deterministic_on_ties():
    entries = [("/b", 5.0), ("/a", 2.5)]  # scores 5 and 5: tie
    assert hot_set(entries, 2) == ("/a", "/b")


# ---------------------------------------------------------------- reports
def test_cache_report_validation():
    with pytest.raises(ValueError):
        CacheReport(node=-1, paths=(), timestamp=0.0)
    with pytest.raises(ValueError):
        CacheReport(node=0, paths=(), timestamp=-1.0)


# -------------------------------------------------------------- directory
def test_directory_keeps_freshest_report_per_node():
    directory = CacheDirectory(owner=0)
    directory.update(CacheReport(node=1, paths=("/a",), timestamp=2.0))
    directory.update(CacheReport(node=1, paths=("/b",), timestamp=1.0))
    assert directory.report_for(1).paths == ("/a",)  # stale one ignored
    directory.update(CacheReport(node=1, paths=("/c",), timestamp=2.0))
    assert directory.report_for(1).paths == ("/c",)  # equal ts: newest wins


def test_directory_holds_respects_ttl():
    directory = CacheDirectory(owner=0, ttl=5.0)
    directory.update(CacheReport(node=1, paths=("/a",), timestamp=10.0))
    assert directory.holds(1, "/a", now=12.0)
    assert directory.holds(1, "/a", now=15.0)
    assert not directory.holds(1, "/a", now=15.1)   # aged out
    assert not directory.holds(1, "/b", now=12.0)   # never advertised
    assert not directory.holds(2, "/a", now=12.0)   # unknown peer


def test_directory_owner_uses_live_probe_not_reports():
    resident = {"/here"}
    directory = CacheDirectory(owner=0, ttl=1.0,
                               local_probe=resident.__contains__)
    # Even an aged-out self-report is irrelevant: the probe is live.
    directory.update(CacheReport(node=0, paths=("/gone",), timestamp=0.0))
    assert directory.holds(0, "/here", now=100.0)
    assert not directory.holds(0, "/gone", now=100.0)


def test_directory_holders_sorted_and_forget():
    directory = CacheDirectory(owner=2, local_probe=lambda p: p == "/a")
    directory.update(CacheReport(node=3, paths=("/a",), timestamp=0.0))
    directory.update(CacheReport(node=1, paths=("/a", "/b"), timestamp=0.0))
    assert directory.holders("/a", now=1.0) == [1, 2, 3]
    assert directory.holders("/b", now=1.0) == [1]
    directory.forget(1)
    assert directory.holders("/a", now=1.0) == [2, 3]


def test_directory_rejects_bad_ttl():
    with pytest.raises(ValueError):
        CacheDirectory(owner=0, ttl=0.0)


# -------------------------------------------------------------- file heat
def test_file_heat_counts_and_byte_ranking():
    heat = FileHeat()
    for _ in range(3):
        heat.record("/small", nbytes=100.0)
    heat.record("/big", nbytes=3e6)
    assert heat.count("/small") == 3
    assert heat.count("/big") == 1
    assert heat.total == 4
    assert heat.mean_count() == pytest.approx(2.0)
    assert heat.bytes_for("/big") == pytest.approx(3e6)
    assert heat.total_bytes == pytest.approx(3e6 + 300.0)
    assert heat.mean_bytes() == pytest.approx((3e6 + 300.0) / 2)
    # By count the small file leads; by bytes the big one does.
    assert heat.top(2)[0][0] == "/small"
    assert heat.top_bytes(2)[0][0] == "/big"


def test_file_heat_empty_means_are_zero():
    heat = FileHeat()
    assert heat.mean_count() == 0.0
    assert heat.mean_bytes() == 0.0
    assert heat.top(5) == []
    assert heat.top_bytes(5) == []


# ----------------------------------------------------- replication daemon
def coop_cluster(n=4, **params_kw):
    params = CostParameters(coop_cache=True, replicate=True, **params_kw)
    cluster = SWEBCluster(meiko_cs2(n), params=params, start_loadd=False)
    return cluster


def test_replication_daemon_validation():
    cluster = coop_cluster()
    daemon = cluster.replicator
    with pytest.raises(ValueError):
        ReplicationDaemon(cluster.sim, cluster.nodes, cluster.fs,
                          cluster.network, daemon.heat, period=0.0)
    with pytest.raises(ValueError):
        ReplicationDaemon(cluster.sim, cluster.nodes, cluster.fs,
                          cluster.network, daemon.heat, factor=0)
    with pytest.raises(ValueError):
        ReplicationDaemon(cluster.sim, cluster.nodes, cluster.fs,
                          cluster.network, daemon.heat, skew=0.5)
    with pytest.raises(ValueError):
        ReplicationDaemon(cluster.sim, cluster.nodes, cluster.fs,
                          cluster.network, daemon.heat, max_per_cycle=0)


def test_replicate_flag_requires_coop_cache():
    with pytest.raises(ValueError):
        CostParameters(replicate=True)


def test_plan_skips_files_with_no_cached_copy():
    cluster = coop_cluster(replication_skew=1.0)
    cluster.fs.add_file("/hot", 2e6, home=0)
    daemon = cluster.replicator
    daemon.heat.record("/hot", nbytes=2e6)
    # Hot by bytes, but nobody holds it in RAM yet: copying would cost a
    # disk read on the hot home node, so the planner waits.
    assert daemon.plan() == []
    cluster.nodes[0].cache.insert("/hot", 2e6)
    planned = daemon.plan()
    assert planned
    assert all(path == "/hot" for path, _ in planned)
    assert all(target != 0 for _, target in planned)


def test_plan_tops_up_to_factor_and_is_deterministic():
    cluster = coop_cluster(replication_factor=3, replication_skew=1.0)
    cluster.fs.add_file("/hot", 1e6, home=0)
    cluster.nodes[0].cache.insert("/hot", 1e6)
    cluster.nodes[1].cache.insert("/hot", 1e6)
    daemon = cluster.replicator
    daemon.heat.record("/hot", nbytes=1e6)
    planned = daemon.plan()
    # Two holders already (0 and 1): one more copy, lowest-id idle peer.
    assert planned == [("/hot", 2)]
    assert daemon.plan() == planned  # pure planning: no hidden state


def test_replicate_lands_copy_and_counts_traffic():
    cluster = coop_cluster()
    cluster.fs.add_file("/hot", 2e6, home=0)
    cluster.nodes[0].cache.insert("/hot", 2e6)
    daemon = cluster.replicator
    done = daemon.replicate("/hot", 2)
    cluster.sim.run(until=done)
    assert "/hot" in cluster.nodes[2].cache
    assert daemon.replications == 1
    assert daemon.bytes_replicated == pytest.approx(2e6)


def test_replication_daemon_runs_end_to_end():
    cluster = coop_cluster(replication_period=0.5, replication_skew=1.0,
                           replication_max_per_cycle=8)
    cluster.fs.add_file("/hot", 2e6, home=0)
    cluster.fs.add_file("/cold", 1e3, home=1)
    cluster.nodes[0].cache.insert("/hot", 2e6)
    daemon = cluster.replicator
    for _ in range(4):
        daemon.heat.record("/hot", nbytes=2e6)
    daemon.heat.record("/cold", nbytes=1e3)
    daemon.start()
    cluster.sim.run(until=5.0)
    assert daemon.cycles >= 8
    assert daemon.replications >= 1
    holders = [n.id for n in cluster.nodes if "/hot" in n.cache]
    assert len(holders) >= 2
    # The cold file never crossed the skew threshold.
    assert all("/cold" not in n.cache or n.id == 1 for n in cluster.nodes)


# ------------------------------------------------------ cache-aware costs
def _snap(node=1):
    return LoadSnapshot(node=node, cpu_load=0.0, disk_load=0.0,
                        net_load=0.0, cpu_speed=40e6, disk_bandwidth=5e6,
                        timestamp=0.0)


def test_t_data_uses_memory_bandwidth_when_cached():
    model = CostModel(CostParameters(coop_cache=True), mem_bandwidth=40e6)
    est = TaskEstimate(cpu_ops=0.0, disk_bytes=1e6, output_bytes=1e6)
    candidate, home = _snap(1), _snap(0)
    baseline = model.t_data(est, candidate, home, file_home=0)
    cached = model.t_data(est, candidate, home, file_home=0, cached=True)
    assert cached < baseline
    assert cached == pytest.approx(1e6 / 40e6)


def test_t_data_knockout_ignores_cached_flag():
    model = CostModel(CostParameters(coop_cache=True, use_cache_term=False),
                      mem_bandwidth=40e6)
    est = TaskEstimate(cpu_ops=0.0, disk_bytes=1e6, output_bytes=1e6)
    candidate, home = _snap(1), _snap(0)
    plainest = model.t_data(est, candidate, home, file_home=0)
    knocked = model.t_data(est, candidate, home, file_home=0, cached=True)
    assert knocked == plainest


# -------------------------------------------------------- fs replica reads
def test_remote_read_served_by_readers_replica():
    cluster = coop_cluster()
    cluster.fs.add_file("/doc", 1e6, home=0)
    cluster.nodes[2].cache.insert("/doc", 1e6)  # planted replica
    done = cluster.fs.read("/doc", at_node=2)
    cluster.sim.run(until=done)
    outcome = done.value
    assert outcome.source == "cache"
    assert outcome.remote is False
    assert cluster.fs.replica_reads == 1
    assert cluster.nodes[0].disk.reads == 0


def test_home_cache_miss_served_from_peer_replica():
    cluster = coop_cluster()
    cluster.fs.add_file("/doc", 1e6, home=0)
    cluster.nodes[3].cache.insert("/doc", 1e6)  # replica elsewhere
    done = cluster.fs.read("/doc", at_node=1)
    cluster.sim.run(until=done)
    outcome = done.value
    assert outcome.source == "cache"
    assert outcome.remote is True
    assert cluster.fs.peer_cache_reads == 1
    assert cluster.nodes[0].disk.reads == 0  # home disk untouched


def test_read_without_any_cached_copy_hits_home_disk():
    cluster = coop_cluster()
    cluster.fs.add_file("/doc", 1e6, home=0)
    done = cluster.fs.read("/doc", at_node=1)
    cluster.sim.run(until=done)
    assert done.value.source == "disk"
    assert cluster.fs.peer_cache_reads == 0
    assert cluster.nodes[0].disk.reads == 1
