"""The docstring lint (scripts/check_docstrings.py) passes repo-wide."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_docstrings.py"


def _load_lint():
    spec = importlib.util.spec_from_file_location("check_docstrings", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_module_and_public_class_is_documented():
    lint = _load_lint()
    problems = lint.check_tree(REPO / "src" / "repro")
    assert problems == [], "\n".join(problems)


def test_lint_catches_missing_docstrings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("class Undocumented:\n    pass\n")
    lint = _load_lint()
    problems = lint.check_tree(tmp_path)
    assert len(problems) == 2          # bare module + bare class
    assert any("Undocumented" in p for p in problems)
    assert lint.main([str(tmp_path)]) == 1


def test_lint_cli_passes_on_real_tree(capsys):
    lint = _load_lint()
    assert lint.main([str(REPO / "src" / "repro")]) == 0
    assert capsys.readouterr().out == ""


def test_scripts_tree_is_documented():
    lint = _load_lint()
    problems = lint.check_tree(REPO / "scripts")
    assert problems == [], "\n".join(problems)


def test_lint_default_covers_library_and_scripts(capsys):
    # No-arg main lints both default roots (src/repro and scripts/).
    lint = _load_lint()
    assert len(lint.DEFAULT_ROOTS) == 2
    assert lint.main([]) == 0
    assert capsys.readouterr().out == ""
