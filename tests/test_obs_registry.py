"""Tests for the metrics registry (docs/METRICS.md).

Covers the three instrument kinds, the create-on-first-use sharing
semantics, the one-implementation percentile contract (every percentile
producer in the repo must agree on shared inputs), the snapshot
merge path the sharded runner folds with (docs/SCALING.md), and the
publishing paths wired into ``loadd`` and the replication daemon.
"""

import math

import numpy as np
import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    merge_snapshots,
    percentile,
    percentiles,
)
from repro.sim import Counter, Summary, Tally


# -- counters --------------------------------------------------------------

def test_counter_group_matches_sim_stats_counter():
    # The swap inside Metrics relies on drop-in compatibility: identical
    # op sequences must produce identical reads and as_dict payloads.
    group, legacy = CounterGroup("http"), Counter()
    ops = [("requests", 1), ("requests", 1), ("dropped", 3),
           ("completed", 1), ("requests", 2)]
    for key, by in ops:
        group.incr(key, by=by)
        legacy.incr(key, by=by)
    assert group.as_dict() == legacy.as_dict()
    assert group["requests"] == legacy["requests"] == 4
    assert group["absent"] == legacy["absent"] == 0


# -- gauges ----------------------------------------------------------------

def test_gauge_set_and_add():
    gauge = Gauge("loadd.bytes_sent")
    assert gauge.value == 0.0
    gauge.set(10.0)
    gauge.add(2.5)
    gauge.add(-0.5)
    assert gauge.value == 12.0
    gauge.set(1.0)
    assert gauge.value == 1.0


# -- histograms ------------------------------------------------------------

def test_histogram_bucket_placement():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 100.0):
        hist.record(v)
    # bounds are inclusive upper edges; the last bucket is overflow
    assert hist.counts == [2, 1, 1, 1]
    assert hist.bucket_counts() == {"1": 2, "2": 1, "4": 1, "+inf": 1}
    assert hist.count == 5
    assert hist.total == pytest.approx(106.0)
    assert hist.minimum == 0.5 and hist.maximum == 100.0
    assert hist.mean == pytest.approx(106.0 / 5)


def test_histogram_percentiles_interpolate_and_clamp():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for _ in range(10):
        hist.record(1.5)     # all in the (1, 2] bucket
    # interpolation stays inside the containing bucket...
    assert 1.0 <= hist.p50 <= 2.0
    # ...and is clamped to the observed range
    assert hist.p99 == pytest.approx(1.5)
    assert hist.percentile(0) == pytest.approx(1.5)
    assert hist.percentile(100) == pytest.approx(1.5)


def test_histogram_percentile_tracks_exact_for_spread_data():
    rng = np.random.default_rng(5)
    values = rng.uniform(0.002, 30.0, size=2000)
    hist = Histogram("latency")          # default LATENCY_BUCKETS
    for v in values:
        hist.record(v)
    for q in (50, 95, 99):
        exact = float(np.percentile(values, q))
        # geometric buckets: the estimate lands within one bucket width
        assert hist.percentile(q) == pytest.approx(exact, rel=0.35)


def test_histogram_edge_cases():
    hist = Histogram("h", bounds=(1.0,))
    assert math.isnan(hist.p50)
    assert math.isnan(hist.mean)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)
    hist.record(3.0)
    assert hist.p50 == pytest.approx(3.0)  # single value: clamped to it
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(1.0, 1.0))


def test_exponential_buckets():
    assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
    assert len(LATENCY_BUCKETS) == 18
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-3)
    assert all(b < c for b, c in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]))
    with pytest.raises(ValueError):
        exponential_buckets(0.0, 2.0, 3)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 1.0, 3)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 2.0, 0)


# -- the registry ----------------------------------------------------------

def test_registry_create_on_first_use_shares_instruments():
    registry = MetricsRegistry()
    a = registry.counters("http")
    b = registry.counters("http")
    assert a is b
    assert registry.gauge("g") is registry.gauge("g")
    h1 = registry.histogram("h", bounds=(1.0, 2.0))
    h2 = registry.histogram("h", bounds=(5.0, 6.0))  # later bounds ignored
    assert h1 is h2 and h1.bounds == (1.0, 2.0)


def test_registry_snapshot_structure():
    registry = MetricsRegistry()
    registry.counters("http").incr("requests", by=3)
    registry.counters("cache").incr("replications")
    registry.gauge("loadd.bytes_sent").set(640.0)
    hist = registry.histogram("http.response_time_s", bounds=(1.0, 2.0))
    snap = registry.snapshot()
    assert snap["counters"] == {"cache.replications": 1, "http.requests": 3}
    assert snap["gauges"] == {"loadd.bytes_sent": 640.0}
    empty = snap["histograms"]["http.response_time_s"]
    assert empty["count"] == 0 and empty["p95"] is None
    hist.record(1.5)
    snap = registry.snapshot()
    filled = snap["histograms"]["http.response_time_s"]
    assert filled["count"] == 1
    assert filled["mean"] == pytest.approx(1.5)
    assert filled["buckets"] == {"1": 0, "2": 1, "+inf": 0}


# -- snapshot merge (the sharded runner's fold) ----------------------------

def test_histogram_absorb_and_from_snapshot_round_trip():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 9.0):
        hist.record(v)
    rebuilt = Histogram.from_snapshot("h", hist.snapshot_entry())
    assert rebuilt.snapshot_entry() == hist.snapshot_entry()
    assert rebuilt.minimum == 0.5 and rebuilt.maximum == 9.0

    # absorbing an empty batch is a no-op; mismatched shapes refuse
    before = rebuilt.snapshot_entry()
    rebuilt.absorb([0, 0, 0, 0], 0, 0.0, float("inf"), float("-inf"))
    assert rebuilt.snapshot_entry() == before
    with pytest.raises(ValueError, match="bucket"):
        rebuilt.absorb([1, 2], 3, 1.0, 0.1, 0.9)
    with pytest.raises(ValueError, match="count"):
        rebuilt.absorb([0, 0, 0, 0], -1, 0.0, 0.0, 0.0)
    # pre-``bounds`` snapshots cannot be merged
    legacy = {k: v for k, v in hist.snapshot_entry().items()
              if k != "bounds"}
    with pytest.raises(ValueError, match="bounds"):
        Histogram.from_snapshot("h", legacy)


def _populated_registry(seed: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counters("http").incr("requests", by=10 + seed)
    registry.counters("cache").incr("hits", by=seed)
    registry.gauge("loadd.bytes_sent").add(100.0 * seed)
    hist = registry.histogram("rt", bounds=(1.0, 2.0, 4.0))
    for v in (0.5 * seed, 1.5, 3.0 + seed):
        hist.record(v)
    return registry


def test_merge_snapshots_equals_one_combined_registry():
    """Merging per-shard snapshots == recording everything in one
    registry — the bit-equality contract run_grid relies on."""
    combined = MetricsRegistry()
    snaps = []
    for seed in (1, 2, 3):
        shard = _populated_registry(seed)
        snaps.append(shard.snapshot())
        combined.counters("http").incr("requests", by=10 + seed)
        combined.counters("cache").incr("hits", by=seed)
        combined.gauge("loadd.bytes_sent").add(100.0 * seed)
        hist = combined.histogram("rt", bounds=(1.0, 2.0, 4.0))
        for v in (0.5 * seed, 1.5, 3.0 + seed):
            hist.record(v)
    merged = merge_snapshots(snaps)
    serial = combined.snapshot()
    assert merged["counters"] == serial["counters"]
    assert merged["gauges"] == serial["gauges"]
    mh, sh = merged["histograms"]["rt"], serial["histograms"]["rt"]
    assert mh["buckets"] == sh["buckets"]
    assert mh["count"] == sh["count"]
    assert mh["min"] == sh["min"] and mh["max"] == sh["max"]
    assert mh["total"] == pytest.approx(sh["total"])
    assert mh["p95"] == pytest.approx(sh["p95"])


def test_merge_snapshots_edge_cases():
    assert merge_snapshots([]) == {"counters": {}, "gauges": {},
                                   "histograms": {}}
    one = _populated_registry(2).snapshot()
    merged = merge_snapshots([one])
    assert merged["counters"] == one["counters"]
    assert merged["histograms"]["rt"] == one["histograms"]["rt"]
    # disjoint instrument sets union cleanly
    other = MetricsRegistry()
    other.counters("dns").incr("lookups", by=7)
    both = merge_snapshots([one, other.snapshot()])
    assert both["counters"]["dns.lookups"] == 7
    assert both["counters"]["http.requests"] == one["counters"]["http.requests"]
    # histograms with different bounds refuse to merge
    a = MetricsRegistry()
    a.histogram("rt", bounds=(1.0,)).record(0.5)
    with pytest.raises(ValueError, match="bounds"):
        merge_snapshots([one, a.snapshot()])


def test_reprs_are_informative():
    registry = MetricsRegistry()
    group = registry.counters("http")
    group.incr("requests")
    hist = registry.histogram("h", bounds=(1.0,))
    hist.record(0.5)
    assert "http" in repr(group)
    assert "bytes" in repr(Gauge("bytes"))
    assert "n=1" in repr(hist)
    assert "counters=1" in repr(registry)


# -- one percentile implementation, everywhere -----------------------------

def test_percentile_helpers_agree_with_numpy():
    values = [4.0, 1.0, 9.0, 2.5, 7.75, 0.5, 3.0]
    for q in (0, 25, 50, 90, 95, 99, 100):
        expected = float(np.percentile(values, q))
        assert percentile(values, q) == pytest.approx(expected)
    p50, p90 = percentiles(values, (50, 90))
    assert p50 == pytest.approx(float(np.percentile(values, 50)))
    assert p90 == pytest.approx(float(np.percentile(values, 90)))
    assert all(math.isnan(v) for v in percentiles([], (50, 95)))


def test_every_percentile_producer_agrees():
    """Summary, Tally, Metrics and the obs helper share one definition."""
    from repro.web import Metrics

    values = [0.12, 0.5, 0.33, 1.8, 0.07, 0.95, 2.4, 0.61]
    summary = Summary.of(values)
    tally = Tally()
    metrics = Metrics()
    for i, v in enumerate(values):
        tally.record(v)
        rec = metrics.new_record(f"/doc{i}", start=10.0 * i)
        metrics.finish(rec, end=10.0 * i + v, status=200)
    for q in (50, 90, 99):
        expected = float(np.percentile(values, q))
        assert percentile(values, q) == pytest.approx(expected)
        assert tally.percentile(q) == pytest.approx(expected)
        assert metrics.response_percentile(q) == pytest.approx(expected)
    assert summary.p50 == pytest.approx(float(np.percentile(values, 50)))
    assert summary.p90 == pytest.approx(float(np.percentile(values, 90)))
    assert summary.p99 == pytest.approx(float(np.percentile(values, 99)))


def test_metrics_publishes_into_registry():
    from repro.web import Metrics

    registry = MetricsRegistry()
    metrics = Metrics(registry=registry)
    rec = metrics.new_record("/a", start=0.0)
    metrics.finish(rec, end=0.25, status=200)
    rec = metrics.new_record("/b", start=1.0)
    metrics.drop(rec, end=3.0, reason="timeout")
    snap = registry.snapshot()
    assert snap["counters"]["http.requests"] == 2
    assert snap["counters"]["http.completed"] == 1
    assert snap["counters"]["http.dropped_timeout"] == 1
    hist = snap["histograms"]["http.response_time_s"]
    assert hist["count"] == 1 and hist["total"] == pytest.approx(0.25)
    # Metrics.counters IS the registry's http group, not a copy.
    assert metrics.counters is registry.counters("http")


# -- subsystem publishing through a real run -------------------------------

def test_loadd_and_cache_publish_into_cluster_registry():
    from repro.experiments.cache_coop import (
        CONFIGS, N_HOT, TAIL_WEIGHT, hot_cold_corpus)
    from repro.experiments.runner import run_scenario
    from repro.sim import RandomStreams
    from repro.workload import Scenario, burst_workload, zipf_sampler
    from repro.cluster import meiko_cs2

    corpus = hot_cold_corpus(6)
    sampler = zipf_sampler(corpus, RandomStreams(seed=7), alpha=1.0,
                           hot_set=N_HOT, tail_weight=TAIL_WEIGHT)
    scenario = Scenario(name="obs-registry", spec=meiko_cs2(6),
                        corpus=corpus, workload=burst_workload(6, 20.0, sampler),
                        policy="sweb", seed=7, client_timeout=600.0,
                        backlog=1024, params=CONFIGS["dir+repl"]())
    result = run_scenario(scenario)
    cluster = result.cluster
    snap = cluster.registry.snapshot()

    loadd = snap["counters"]
    assert loadd["loadd.broadcasts"] == sum(
        d.broadcasts for d in cluster.loadds.values())
    assert loadd["loadd.messages"] == sum(
        d.messages_sent for d in cluster.loadds.values())
    assert loadd["loadd.broadcasts"] > 0
    assert snap["gauges"]["loadd.bytes_sent"] == pytest.approx(
        sum(d.bytes_sent for d in cluster.loadds.values()))

    assert cluster.total_replications() > 0
    assert loadd["cache.replications"] == cluster.total_replications()
    assert loadd["cache.bytes_replicated"] == pytest.approx(
        cluster.replicator.bytes_replicated)

    # the client-facing metrics share the same registry
    assert loadd["http.requests"] == result.metrics.total
    hist = snap["histograms"]["http.response_time_s"]
    assert hist["count"] == result.metrics.completed


test_loadd_and_cache_publish_into_cluster_registry.__coverage_gate_skip__ = (
    True)
