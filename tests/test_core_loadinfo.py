"""Unit tests for LoadSnapshot / ClusterView (repro.core.loadinfo)."""

import pytest

from repro.core import ClusterView, LoadSnapshot


def snap(node=0, cpu=1.0, t=0.0, disk=0.0, net=0.0):
    return LoadSnapshot(node=node, cpu_load=cpu, disk_load=disk, net_load=net,
                        cpu_speed=40e6, disk_bandwidth=5e6, timestamp=t)


def test_update_and_get():
    view = ClusterView(owner=0, staleness_timeout=5.0)
    view.update(snap(node=1, cpu=2.0, t=0.0))
    got = view.get(1, now=1.0)
    assert got is not None and got.cpu_load == 2.0


def test_staleness_marks_unavailable():
    view = ClusterView(owner=0, staleness_timeout=5.0)
    view.update(snap(node=1, t=0.0))
    assert view.get(1, now=4.9) is not None
    assert view.get(1, now=5.1) is None


def test_own_snapshot_never_stales():
    view = ClusterView(owner=0, staleness_timeout=5.0)
    view.update(snap(node=0, t=0.0))
    assert view.get(0, now=1000.0) is not None


def test_available_filters_and_sorts():
    view = ClusterView(owner=0, staleness_timeout=5.0)
    view.update(snap(node=2, t=0.0))
    view.update(snap(node=0, t=8.0))
    view.update(snap(node=1, t=8.0))
    avail = view.available(now=9.0)
    assert [s.node for s in avail] == [0, 1]   # node 2 is stale


def test_inflate_cpu_delta():
    view = ClusterView(owner=0)
    view.update(snap(node=1, cpu=2.0, t=0.0))
    view.inflate_cpu(1, delta=0.30)
    got = view.get(1, now=0.0)
    assert got.cpu_load == pytest.approx(2.0 * 1.3 + 0.3)


def test_inflate_cpu_moves_idle_node_off_zero():
    view = ClusterView(owner=0)
    view.update(snap(node=1, cpu=0.0, t=0.0))
    view.inflate_cpu(1, delta=0.30)
    assert view.get(1, now=0.0).cpu_load == pytest.approx(0.30)


def test_inflate_unknown_node_is_noop():
    view = ClusterView(owner=0)
    view.inflate_cpu(7, delta=0.3)   # must not raise
    assert view.get(7, now=0.0) is None


def test_forget():
    view = ClusterView(owner=0)
    view.update(snap(node=1))
    view.forget(1)
    assert view.get(1, now=0.0) is None
    assert view.known_nodes() == []


def test_snapshot_aged():
    s = snap(t=3.0)
    assert s.aged(10.0) == pytest.approx(7.0)


def test_view_validation():
    with pytest.raises(ValueError):
        ClusterView(owner=0, staleness_timeout=0.0)
