"""Unit tests for metrics primitives (repro.sim.stats)."""

import math

import pytest

from repro.sim import Counter, PhaseAccumulator, Summary, Tally, TimeWeighted


# ------------------------------------------------------------------ Summary
def test_summary_of_values():
    s = Summary.of([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.total == pytest.approx(10.0)
    assert s.p50 == pytest.approx(2.5)


def test_summary_empty():
    s = Summary.of([])
    assert s.count == 0
    assert math.isnan(s.mean)
    assert s.total == 0.0


# -------------------------------------------------------------------- Tally
def test_tally_basic():
    t = Tally("rt")
    for v in (1.0, 3.0, 5.0):
        t.record(v)
    assert t.count == 3
    assert t.mean == pytest.approx(3.0)
    assert t.total == pytest.approx(9.0)
    assert t.percentile(50) == pytest.approx(3.0)


def test_tally_empty_stats_are_nan():
    t = Tally()
    assert math.isnan(t.mean)
    assert math.isnan(t.percentile(50))
    assert t.total == 0.0


# ------------------------------------------------------------- TimeWeighted
def test_time_weighted_average_step_function():
    tw = TimeWeighted(initial=0.0, at=0.0)
    tw.update(2.0, 10.0)   # 0 on [0,2), 10 on [2,4)
    tw.update(4.0, 0.0)
    assert tw.average(0.0, 4.0) == pytest.approx(5.0)
    assert tw.average(0.0, 2.0) == pytest.approx(0.0)
    assert tw.average(2.0, 4.0) == pytest.approx(10.0)


def test_time_weighted_value_at():
    tw = TimeWeighted(initial=1.0, at=0.0)
    tw.update(5.0, 7.0)
    assert tw.value_at(0.0) == 1.0
    assert tw.value_at(4.999) == 1.0
    assert tw.value_at(5.0) == 7.0
    assert tw.current == 7.0


def test_time_weighted_add_delta():
    tw = TimeWeighted(initial=2.0)
    tw.add(1.0, 3.0)
    assert tw.current == 5.0
    tw.add(2.0, -5.0)
    assert tw.current == 0.0


def test_time_weighted_rejects_time_travel():
    tw = TimeWeighted()
    tw.update(5.0, 1.0)
    with pytest.raises(ValueError):
        tw.update(4.0, 2.0)


def test_time_weighted_window_past_last_update():
    tw = TimeWeighted(initial=3.0, at=0.0)
    # Signal constant at 3; any window averages 3.
    assert tw.average(10.0, 20.0) == pytest.approx(3.0)


# ------------------------------------------------------------------ Counter
def test_counter():
    c = Counter()
    c.incr("drops")
    c.incr("drops", 2)
    assert c["drops"] == 3
    assert c["missing"] == 0
    assert c.as_dict() == {"drops": 3}


# -------------------------------------------------------- PhaseAccumulator
def test_phase_accumulator():
    pa = PhaseAccumulator()
    pa.record("preprocess", 0.07)
    pa.record("preprocess", 0.07)
    pa.record("transfer", 4.9)
    assert pa.total("preprocess") == pytest.approx(0.14)
    assert pa.count("preprocess") == 2
    assert pa.mean("preprocess") == pytest.approx(0.07)
    assert pa.phases() == ["preprocess", "transfer"]


def test_phase_accumulator_merge():
    a, b = PhaseAccumulator(), PhaseAccumulator()
    a.record("x", 1.0)
    b.record("x", 2.0)
    b.record("y", 3.0)
    a.merge(b)
    assert a.total("x") == pytest.approx(3.0)
    assert a.total("y") == pytest.approx(3.0)
    assert a.count("x") == 2


def test_phase_accumulator_rejects_negative():
    pa = PhaseAccumulator()
    with pytest.raises(ValueError):
        pa.record("x", -1.0)
