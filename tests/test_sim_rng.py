"""Unit tests for deterministic random substreams (repro.sim.rng)."""

import numpy as np
import pytest

from repro.sim import RandomStreams


def test_same_seed_same_draws():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert [a.uniform("x") for _ in range(5)] == [b.uniform("x") for _ in range(5)]


def test_different_names_are_independent():
    rs = RandomStreams(seed=7)
    # Drawing from "a" must not perturb "b": interleave vs. not.
    rs2 = RandomStreams(seed=7)
    seq_b_alone = [rs2.uniform("b") for _ in range(5)]
    got = []
    for _ in range(5):
        rs.uniform("a")
        got.append(rs.uniform("b"))
    assert got == seq_b_alone


def test_different_seeds_differ():
    a = RandomStreams(seed=1)
    b = RandomStreams(seed=2)
    assert a.uniform("x") != b.uniform("x")


def test_stream_is_cached():
    rs = RandomStreams(seed=0)
    assert rs.stream("s") is rs.stream("s")


def test_spawn_derives_stable_child():
    a = RandomStreams(seed=3).spawn("child")
    b = RandomStreams(seed=3).spawn("child")
    assert a.uniform("x") == b.uniform("x")
    c = RandomStreams(seed=3).spawn("other")
    assert a.seed != c.seed


def test_integers_in_range():
    rs = RandomStreams(seed=0)
    draws = [rs.integers("i", 3, 9) for _ in range(200)]
    assert all(3 <= d < 9 for d in draws)
    assert set(draws) == set(range(3, 9))


def test_exponential_mean_roughly_right():
    rs = RandomStreams(seed=0)
    draws = [rs.exponential("e", 2.0) for _ in range(5000)]
    assert np.mean(draws) == pytest.approx(2.0, rel=0.1)


def test_choice_uniform_and_weighted():
    rs = RandomStreams(seed=0)
    items = ["a", "b", "c"]
    picks = [rs.choice("c1", items) for _ in range(300)]
    assert set(picks) == {"a", "b", "c"}
    skewed = [rs.choice("c2", items, p=[0.98, 0.01, 0.01]) for _ in range(300)]
    assert skewed.count("a") > 250


def test_zipf_index_skews_to_low_ranks():
    rs = RandomStreams(seed=0)
    draws = [rs.zipf_index("z", 100, alpha=1.2) for _ in range(2000)]
    assert all(0 <= d < 100 for d in draws)
    assert draws.count(0) > draws.count(50)


def test_zipf_rejects_empty():
    rs = RandomStreams(seed=0)
    with pytest.raises(ValueError):
        rs.zipf_index("z", 0)
