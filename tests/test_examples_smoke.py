"""Smoke tests: the fast examples must stay runnable end to end.

(`scheduling_comparison.py` and `capacity_planning.py` run multi-minute
sweeps and are exercised manually / by their underlying experiment
modules instead.)
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "SWEB quickstart" in out
    assert "completed 14" in out
    assert "Per-phase mean cost" in out


def test_digital_library(capsys):
    out = run_example("digital_library.py", capsys)
    assert "Alexandria Digital Library" in out
    assert "thumbnail" in out
    assert "page-cache hit rate" in out


def test_browser_sessions(capsys):
    out = run_example("browser_sessions.py", capsys)
    assert "page loads: 48, fully rendered: 48" in out
    assert "run queue" in out


def test_heterogeneous_now(capsys):
    out = run_example("heterogeneous_now.py", capsys)
    assert "node 0 (the fast one) leaves the pool" in out
    assert "rejoins" in out
    assert "served-by histogram" in out


def test_trace_replay(capsys):
    out = run_example("trace_replay.py", capsys)
    assert "access_log" in out
    assert "replay on 3 nodes" in out


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "digital_library.py",
            "scheduling_comparison.py", "heterogeneous_now.py",
            "capacity_planning.py", "browser_sessions.py",
            "trace_replay.py"} <= names
