"""Fixed-seed determinism regression tests.

The kernel performance pass (``docs/PERFORMANCE.md``) rewrote several hot
paths — the run loop, the fair-share water-filling allocator, trace
gating, and the loadd broadcast fan-out — under the contract that every
change is *behaviour-preserving*: a fixed-seed scenario must produce
bit-identical metrics before and after.  This module pins that contract:
it runs two small scenarios (one per fabric type) and compares an exact,
``repr``-level fingerprint of every request record, counter and trace
line against a golden fixture generated before the optimisation pass.

If a change legitimately alters simulation behaviour (new feature, model
fix), regenerate the golden file::

    PYTHONPATH=src python tests/test_determinism.py --regenerate

and explain the behaviour change in the commit message.  A *performance*
change must never need to do this.
"""

import hashlib
import json
import sys
from pathlib import Path

from repro.cluster import meiko_cs2, sun_now
from repro.core.costmodel import CostParameters
from repro.experiments.cache_coop import hot_cold_corpus
from repro.experiments.runner import Scenario, run_scenario
from repro.geo import GeoScenario, run_geo
from repro.sim import RandomStreams, Trace
from repro.workload import (
    burst_workload,
    poisson_workload,
    uniform_corpus,
    uniform_sampler,
    zipf_sampler,
)

DATA = Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "determinism_fingerprint.json"
#: the fingerprint as it stood before the geo tier landed — the three
#: single-cluster scenarios must stay bit-identical with geo disabled
PRE_GEO = DATA / "determinism_fingerprint_pre_geo.json"


def _scenarios():
    """Fixed-seed scenarios covering both fabrics, both hot paths, and
    the cooperative-cache machinery (directory, replication daemon,
    replica and peer-cache read paths)."""
    meiko_corpus = uniform_corpus(24, 4e4, 6)
    meiko = Scenario(
        name="det-meiko",
        spec=meiko_cs2(6),
        corpus=meiko_corpus,
        workload=burst_workload(
            20, 8.0, uniform_sampler(meiko_corpus, RandomStreams(seed=7))),
        policy="sweb",
        seed=3,
        trace=Trace(),
    )
    now_corpus = uniform_corpus(12, 8e4, 4)
    now = Scenario(
        name="det-now",
        spec=sun_now(4),
        corpus=now_corpus,
        workload=poisson_workload(
            10.0, 6.0, uniform_sampler(now_corpus, RandomStreams(seed=11)),
            RandomStreams(seed=13)),
        policy="sweb",
        seed=5,
        params=CostParameters(),
        trace=Trace(),
    )
    coop_corpus = hot_cold_corpus(4)
    coop = Scenario(
        name="det-coop",
        spec=meiko_cs2(4),
        corpus=coop_corpus,
        workload=burst_workload(
            6, 20.0, zipf_sampler(coop_corpus, RandomStreams(seed=17),
                                  alpha=1.0, hot_set=16, tail_weight=0.25)),
        policy="sweb",
        seed=9,
        params=CostParameters(coop_cache=True, replicate=True,
                              cache_hot_set=16, replication_period=1.0,
                              replication_skew=1.0,
                              replication_max_per_cycle=8),
        trace=Trace(),
    )
    return [meiko, now, coop]


def _record_line(rec) -> str:
    phases = " ".join(f"{k}={v!r}" for k, v in sorted(rec.phases.items()))
    return (f"{rec.req_id} {rec.path} start={rec.start!r} end={rec.end!r} "
            f"status={rec.status} ok={rec.ok} dropped={rec.dropped} "
            f"reason={rec.drop_reason} dns={rec.dns_node} "
            f"served={rec.served_by} redirected={rec.redirected} "
            f"retries={rec.retries} [{phases}]")


def _geo_entry() -> dict:
    """Repr-level digest of a fixed-seed three-site geo scenario: every
    population's exact response times plus the WAN/placement counters."""
    result = run_geo(GeoScenario(
        name="det-geo", n_files=24, hot_files=6, file_bytes=6e4,
        rps=18.0, duration=6.0, seed=21, graceful=True,
        edge_budget_bytes=4e6))
    populations = {}
    for site, pop in sorted(result.populations.items()):
        populations[site] = {
            "offered": pop.offered, "completed": pop.completed,
            "dropped": pop.dropped, "lost": pop.lost,
            "spilled": pop.spilled,
            "response_times": [repr(t) for t in pop.response_times],
        }
    return {
        "populations": populations,
        "edge_hit_rate": repr(result.edge_hit_rate),
        "wan_reads": result.wan_reads,
        "wan_bytes": repr(result.wan_bytes),
        "placements": result.placements,
        "spills": result.spills,
        "partition_spills": result.partition_spills,
        "unroutable": result.unroutable,
        "finished_at": repr(result.finished_at),
    }


def fingerprint() -> dict:
    """Exact (repr-level) digest of the fixed-seed scenarios."""
    out = {}
    for scenario in _scenarios():
        result = run_scenario(scenario)
        metrics = result.metrics
        trace_text = scenario.trace.render()
        out[scenario.name] = {
            "records": [_record_line(r) for r in metrics.records],
            "counters": {k: v for k, v in
                         sorted(metrics.counters.as_dict().items())},
            "served_by": {str(k): v for k, v in
                          sorted(metrics.served_by_histogram().items())},
            "finished_at": repr(result.finished_at),
            "trace_records": len(scenario.trace),
            "trace_sha256": hashlib.sha256(
                trace_text.encode()).hexdigest(),
        }
    out["det-geo"] = _geo_entry()
    return out


def test_fixed_seed_scenarios_match_golden_fingerprint():
    golden = json.loads(GOLDEN.read_text())
    current = fingerprint()
    assert current.keys() == golden.keys()
    for name in golden:
        for key in golden[name]:
            assert current[name][key] == golden[name][key], (
                f"{name}.{key} drifted from the golden fingerprint — a "
                f"supposedly behaviour-preserving change altered simulation "
                f"results (see docs/PERFORMANCE.md)")


def test_pre_geo_goldens_unchanged_with_geo_disabled():
    """The geo tier is additive: with geo off (the default everywhere),
    the three single-cluster scenarios must stay *bit-identical* to the
    fingerprint pinned before the tier landed (docs/GEO.md)."""
    pre_geo = json.loads(PRE_GEO.read_text())
    assert "det-geo" not in pre_geo  # the pin really predates the tier
    current = fingerprint()
    for name in pre_geo:
        assert current[name] == pre_geo[name], (
            f"{name} drifted from the pre-geo fingerprint — the geo tier "
            f"must be a strict no-op when disabled (docs/GEO.md)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(fingerprint(), indent=1) + "\n")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)
