"""Unit tests for the disk model (repro.cluster.disk)."""

import pytest

from repro.cluster import Disk
from repro.sim import Simulator


def test_single_read_time():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)
    log = []

    def go():
        yield disk.read(1.5e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(0.3)]


def test_concurrent_reads_share_channel():
    sim = Simulator()
    disk = Disk(sim, bandwidth=10e6)
    log = []

    def go(tag):
        yield disk.read(10e6)
        log.append((tag, sim.now))

    sim.spawn(go("a"))
    sim.spawn(go("b"))
    sim.run()
    # Two 10 MB reads on a 10 MB/s channel: both finish at t=2.
    assert log == [("a", pytest.approx(2.0)), ("b", pytest.approx(2.0))]


def test_channel_load_and_effective_bandwidth():
    sim = Simulator()
    disk = Disk(sim, bandwidth=8e6)
    assert disk.channel_load == 0
    assert disk.effective_bandwidth() == pytest.approx(8e6)
    disk.read(1e6)
    disk.read(1e6)
    assert disk.channel_load == 2
    assert disk.effective_bandwidth() == pytest.approx(4e6)


def test_read_statistics():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6)

    def go():
        yield disk.read(2e6)
        yield disk.read(3e6)

    sim.spawn(go())
    sim.run()
    assert disk.reads == 2
    assert disk.bytes_read == pytest.approx(5e6)
    assert disk.utilization() == pytest.approx(1.0)


def test_allocate_capacity_enforced():
    sim = Simulator()
    disk = Disk(sim, bandwidth=5e6, capacity=100.0)
    disk.allocate(60.0)
    with pytest.raises(ValueError):
        disk.allocate(50.0)
    disk.allocate(40.0)
    assert disk.used_bytes == pytest.approx(100.0)


def test_invalid_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, bandwidth=0.0)
    disk = Disk(sim, bandwidth=1.0)
    with pytest.raises(ValueError):
        disk.read(-5.0)
