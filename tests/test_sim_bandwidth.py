"""Unit tests for the fair-share server (repro.sim.bandwidth)."""

import math

import pytest

from repro.sim import FairShareServer, Simulator


def run_transfers(rate, submissions):
    """Helper: submissions = [(t_submit, work)], returns completion times."""
    sim = Simulator()
    srv = FairShareServer(sim, rate=rate)
    finished = {}

    def submit_at(tag, when, work):
        yield sim.timeout(when)
        job = srv.submit(work, tag=tag)
        yield job.done
        finished[tag] = sim.now

    for i, (when, work) in enumerate(submissions):
        sim.spawn(submit_at(i, when, work))
    sim.run()
    return finished


def test_single_job_service_time():
    finished = run_transfers(rate=10.0, submissions=[(0.0, 100.0)])
    assert finished[0] == pytest.approx(10.0)


def test_two_equal_jobs_share_rate():
    # Both get rate/2 until done: 100 units at 5/s each -> both at t=20.
    finished = run_transfers(rate=10.0, submissions=[(0.0, 100.0), (0.0, 100.0)])
    assert finished[0] == pytest.approx(20.0)
    assert finished[1] == pytest.approx(20.0)


def test_late_arrival_slows_first_job():
    # Job0: alone 0..5 (50 done), then shares: 50 left at 5/s -> +10 => t=15.
    # Job1: 100 units, shares from t=5 at 5/s for 10s (50), then alone at
    # 10/s for 5s => t = 5 + 10 + 5 = 20.
    finished = run_transfers(rate=10.0, submissions=[(0.0, 100.0), (5.0, 100.0)])
    assert finished[0] == pytest.approx(15.0)
    assert finished[1] == pytest.approx(20.0)


def test_weighted_sharing():
    sim = Simulator()
    srv = FairShareServer(sim, rate=12.0)
    done = {}

    def go(tag, work, weight):
        job = srv.submit(work, weight=weight, tag=tag)
        yield job.done
        done[tag] = sim.now

    # weight 2 gets 8/s, weight 1 gets 4/s while both active.
    sim.spawn(go("heavy", 80.0, 2.0))
    sim.spawn(go("light", 80.0, 1.0))
    sim.run()
    # heavy: 80/8 = 10s. light: 40 done by t=10, then alone 40 @ 12/s.
    assert done["heavy"] == pytest.approx(10.0)
    assert done["light"] == pytest.approx(10.0 + 40.0 / 12.0)


def test_per_job_cap_limits_rate():
    sim = Simulator()
    srv = FairShareServer(sim, rate=100.0)
    done = {}

    def go(tag, work, cap=None):
        job = srv.submit(work, cap=cap, tag=tag)
        yield job.done
        done[tag] = sim.now

    sim.spawn(go("capped", 100.0, cap=10.0))
    sim.run()
    assert done["capped"] == pytest.approx(10.0)


def test_cap_surplus_goes_to_uncapped_job():
    sim = Simulator()
    srv = FairShareServer(sim, rate=100.0)
    done = {}

    def go(tag, work, cap=None):
        job = srv.submit(work, cap=cap, tag=tag)
        yield job.done
        done[tag] = sim.now

    # capped job gets 10, uncapped gets the remaining 90.
    sim.spawn(go("capped", 100.0, cap=10.0))
    sim.spawn(go("free", 90.0))
    sim.run()
    assert done["free"] == pytest.approx(1.0)
    assert done["capped"] == pytest.approx(10.0)


def test_zero_work_completes_immediately():
    sim = Simulator()
    srv = FairShareServer(sim, rate=5.0)
    job = srv.submit(0.0, tag="empty")
    assert job.done.triggered
    sim.run()
    assert job.remaining == 0.0


def test_cancel_fails_done_event():
    sim = Simulator()
    srv = FairShareServer(sim, rate=1.0)
    caught = []

    def go():
        job = srv.submit(100.0, tag="victim")
        try:
            yield job.done
        except InterruptedError:
            caught.append(sim.now)

    def killer():
        yield sim.timeout(3.0)
        srv.cancel(srv.jobs[0])

    sim.spawn(go())
    sim.spawn(killer())
    sim.run()
    assert caught == [3.0]


def test_cancel_speeds_up_survivor():
    sim = Simulator()
    srv = FairShareServer(sim, rate=10.0)
    done = {}

    def go(tag, work):
        job = srv.submit(work, tag=tag)
        try:
            yield job.done
            done[tag] = sim.now
        except InterruptedError:
            pass

    def killer():
        yield sim.timeout(2.0)
        victim = next(j for j in srv.jobs if j.tag == "b")
        srv.cancel(victim)

    sim.spawn(go("a", 100.0))
    sim.spawn(go("b", 100.0))
    sim.spawn(killer())
    sim.run()
    # a: 10 units done by t=2 (5/s each), then 90 @ 10/s -> t=11.
    assert done["a"] == pytest.approx(11.0)


def test_set_rate_mid_service():
    sim = Simulator()
    srv = FairShareServer(sim, rate=10.0)
    done = {}

    def go():
        job = srv.submit(100.0, tag="x")
        yield job.done
        done["x"] = sim.now

    def slow_down():
        yield sim.timeout(5.0)
        srv.set_rate(5.0)

    sim.spawn(go())
    sim.spawn(slow_down())
    sim.run()
    # 50 done at t=5, remaining 50 at 5/s -> t=15.
    assert done["x"] == pytest.approx(15.0)


def test_zero_rate_stalls_until_rate_restored():
    sim = Simulator()
    srv = FairShareServer(sim, rate=0.0)
    done = {}

    def go():
        job = srv.submit(10.0, tag="x")
        yield job.done
        done["x"] = sim.now

    def restore():
        yield sim.timeout(7.0)
        srv.set_rate(10.0)

    sim.spawn(go())
    sim.spawn(restore())
    sim.run()
    assert done["x"] == pytest.approx(8.0)


def test_work_conservation_accounting():
    sim = Simulator()
    srv = FairShareServer(sim, rate=10.0)

    def go(work):
        job = srv.submit(work)
        yield job.done

    for w in (10.0, 20.0, 30.0):
        sim.spawn(go(w))
    sim.run()
    assert srv.work_completed == pytest.approx(60.0)
    assert srv.jobs_completed == 3
    assert srv.njobs == 0


def test_busy_and_population_integrals():
    sim = Simulator()
    srv = FairShareServer(sim, rate=10.0)

    def go():
        job = srv.submit(100.0)
        yield job.done

    sim.spawn(go())
    sim.run()
    assert srv.busy_integral() == pytest.approx(10.0)
    assert srv.population_integral() == pytest.approx(10.0)


def test_invalid_args_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FairShareServer(sim, rate=-1.0)
    srv = FairShareServer(sim, rate=1.0)
    with pytest.raises(ValueError):
        srv.submit(-1.0)
    with pytest.raises(ValueError):
        srv.submit(1.0, weight=0.0)
    with pytest.raises(ValueError):
        srv.submit(1.0, cap=0.0)
    with pytest.raises(ValueError):
        srv.set_rate(-2.0)


def test_service_time_helper():
    sim = Simulator()
    srv = FairShareServer(sim, rate=4.0)
    assert srv.service_time(8.0) == pytest.approx(2.0)
    srv.set_rate(0.0)
    assert math.isinf(srv.service_time(8.0))


def test_many_staggered_jobs_total_time_matches_total_work():
    # Regardless of interleaving, the server is busy exactly
    # total_work / rate seconds when jobs overlap completely back-to-back.
    sim = Simulator()
    srv = FairShareServer(sim, rate=2.0)
    finished = []

    def go(delay, work):
        yield sim.timeout(delay)
        job = srv.submit(work)
        yield job.done
        finished.append(sim.now)

    # All submitted at t=0: the last completion is total_work/rate.
    for work in (2.0, 4.0, 6.0, 8.0):
        sim.spawn(go(0.0, work))
    sim.run()
    assert max(finished) == pytest.approx(20.0 / 2.0)
