"""Unit tests for the load daemon and the §3.3 analysis."""

import pytest

from repro.cluster import meiko_cs2
from repro.core import (
    AnalysisInputs,
    CostParameters,
    SWEBCluster,
    max_sustained_rps,
    paper_example,
    service_demand,
    speedup_bound,
)


# -------------------------------------------------------------------- loadd
def test_initial_broadcast_populates_all_views():
    cluster = SWEBCluster(meiko_cs2(4), start_loadd=False)
    for view in cluster.views.values():
        assert view.known_nodes() == [0, 1, 2, 3]


def test_periodic_broadcasts_refresh_views():
    cluster = SWEBCluster(meiko_cs2(3))
    cluster.run(until=10.0)
    # ~10 s / 2.5 s period -> several broadcasts per daemon.
    for daemon in cluster.loadds.values():
        assert daemon.broadcasts >= 3
        assert daemon.messages_sent == daemon.broadcasts * 2
    # Views carry recent timestamps.
    snap = cluster.views[0].get(2, now=10.0)
    assert snap is not None
    assert snap.timestamp > 5.0


def test_departed_node_goes_stale_in_peer_views():
    cluster = SWEBCluster(meiko_cs2(3))
    cluster.node_leave(2)
    cluster.run(until=cluster.params.staleness_timeout + 5.0)
    now = cluster.sim.now
    assert cluster.views[0].get(2, now) is None
    assert cluster.views[1].get(2, now) is None
    # The survivors still see each other.
    assert cluster.views[0].get(1, now) is not None


def test_rejoined_node_becomes_visible_again():
    cluster = SWEBCluster(meiko_cs2(3))
    cluster.node_leave(2)
    cluster.run(until=15.0)
    cluster.node_join(2)
    cluster.run(until=20.0)
    assert cluster.views[0].get(2, cluster.sim.now) is not None


def test_loadd_samples_cpu_window_average():
    cluster = SWEBCluster(meiko_cs2(2), start_loadd=False)
    node = cluster.nodes[0]
    daemon = cluster.loadds[0]

    def burn():
        # Two concurrent 1-second jobs for the whole window.
        node.compute(40e6)
        node.compute(40e6)
        yield cluster.sim.timeout(2.0)

    cluster.sim.spawn(burn())
    cluster.run(until=1.0)
    snap = daemon.sample()
    assert snap.cpu_load == pytest.approx(2.0, rel=0.05)


def test_loadd_cpu_cost_is_accounted():
    cluster = SWEBCluster(meiko_cs2(2))
    cluster.run(until=30.0)
    shares = cluster.cpu_share_by_category()
    assert 0.0 < shares.get("loadd", 0.0) < 0.01   # well under 1 %


# ----------------------------------------------------------------- analysis
def test_paper_example_reproduces_quoted_numbers():
    inputs = paper_example()
    per_node = max_sustained_rps(inputs, per_node=True)
    total = max_sustained_rps(inputs)
    assert per_node == pytest.approx(2.88, abs=0.02)
    assert total == pytest.approx(17.3, abs=0.15)


def test_service_demand_decreases_with_more_nodes_when_local_is_faster():
    # b1 > b2: more nodes => larger remote fraction => *higher* demand,
    # but p in the numerator wins: total rps still grows.
    base = dict(F=1.5e6, b1=5e6, b2=4.5e6, d=0.0, A=0.02, O=0.0)
    r2 = max_sustained_rps(AnalysisInputs(p=2, **base))
    r6 = max_sustained_rps(AnalysisInputs(p=6, **base))
    assert r6 > r2


def test_single_node_demand_is_pure_local():
    inputs = AnalysisInputs(p=1, F=1e6, b1=5e6, b2=1e6, d=0.0, A=0.01)
    assert service_demand(inputs) == pytest.approx(1e6 / 5e6 + 0.01)


def test_redirection_probability_adds_overhead():
    quiet = AnalysisInputs(p=4, F=1e6, b1=5e6, b2=5e6, d=0.0, A=0.02, O=0.01)
    busy = AnalysisInputs(p=4, F=1e6, b1=5e6, b2=5e6, d=0.5, A=0.02, O=0.01)
    assert service_demand(busy) > service_demand(quiet)


def test_speedup_bound_is_superunitary():
    inputs = AnalysisInputs(p=6, F=1.5e6, b1=5e6, b2=4.5e6, A=0.02)
    s = speedup_bound(inputs)
    assert 4.0 < s <= 6.0


def test_analysis_validation():
    with pytest.raises(ValueError):
        AnalysisInputs(p=0, F=1.0, b1=1.0, b2=1.0)
    with pytest.raises(ValueError):
        AnalysisInputs(p=1, F=-1.0, b1=1.0, b2=1.0)
    with pytest.raises(ValueError):
        AnalysisInputs(p=1, F=1.0, b1=0.0, b2=1.0)
    with pytest.raises(ValueError):
        AnalysisInputs(p=1, F=1.0, b1=1.0, b2=1.0, d=1.5)
