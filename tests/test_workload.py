"""Unit tests for corpora and workload generators."""

import pytest

from repro.sim import RandomStreams
from repro.workload import (
    adl_corpus,
    burst_workload,
    hot_file_sampler,
    mixed_corpus,
    poisson_workload,
    ramp_workload,
    single_hot_file,
    uniform_corpus,
    uniform_sampler,
    weighted_sampler,
    zipf_sampler,
)


# ------------------------------------------------------------------- corpora
def test_uniform_corpus_round_robin_placement():
    corpus = uniform_corpus(10, 1.5e6, n_nodes=4)
    assert len(corpus) == 10
    homes = [d.home for d in corpus.documents]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
    assert corpus.mean_size == pytest.approx(1.5e6)
    assert corpus.total_bytes == pytest.approx(15e6)


def test_uniform_corpus_fixed_placement():
    corpus = uniform_corpus(5, 100.0, n_nodes=4, placement=2)
    assert all(d.home == 2 for d in corpus.documents)


def test_uniform_corpus_callable_placement():
    corpus = uniform_corpus(6, 100.0, n_nodes=3, placement=lambda i: i * 2)
    assert [d.home for d in corpus.documents] == [0, 2, 1, 0, 2, 1]


def test_uniform_corpus_random_placement_needs_rng():
    with pytest.raises(ValueError):
        uniform_corpus(5, 100.0, n_nodes=2, placement="random")
    corpus = uniform_corpus(50, 100.0, n_nodes=2, placement="random",
                            rng=RandomStreams(1))
    assert {d.home for d in corpus.documents} == {0, 1}


def test_mixed_corpus_size_range_and_determinism():
    c1 = mixed_corpus(100, n_nodes=3, seed=5)
    c2 = mixed_corpus(100, n_nodes=3, seed=5)
    assert [d.size for d in c1.documents] == [d.size for d in c2.documents]
    sizes = [d.size for d in c1.documents]
    assert min(sizes) >= 100.0 and max(sizes) <= 1.5e6
    assert max(sizes) / min(sizes) > 50    # genuinely non-uniform


def test_single_hot_file_shape():
    corpus = single_hot_file(size=1.5e6, home=3)
    assert len(corpus) == 1
    assert corpus.documents[0].home == 3


def test_adl_corpus_contents():
    corpus = adl_corpus(n_nodes=4, n_maps=10)
    assert len(corpus) == 1 + 3 * 10
    assert len(corpus.cgis) == 3
    exts = {p.rsplit(".", 1)[-1] for p in corpus.paths}
    assert {"gif", "tif", "html"} <= exts


def test_corpus_install_places_files_and_cgis():
    from repro import SWEBCluster, meiko_cs2
    corpus = adl_corpus(n_nodes=3, n_maps=3)
    cluster = SWEBCluster(meiko_cs2(3), start_loadd=False)
    corpus.install(cluster)
    assert len(cluster.fs) == len(corpus)
    assert "/cgi-bin/spatial-query" in cluster.cgi


def test_corpus_validation():
    with pytest.raises(ValueError):
        uniform_corpus(0, 1.0, 1)
    with pytest.raises(ValueError):
        uniform_corpus(1, -1.0, 1)
    with pytest.raises(ValueError):
        mixed_corpus(1, 1, min_size=10.0, max_size=1.0)


# ----------------------------------------------------------------- samplers
def test_uniform_sampler_covers_corpus():
    corpus = uniform_corpus(5, 1.0, 1)
    sample = uniform_sampler(corpus, RandomStreams(0))
    assert {sample() for _ in range(100)} == set(corpus.paths)


def test_zipf_sampler_skews():
    corpus = uniform_corpus(50, 1.0, 1)
    sample = zipf_sampler(corpus, RandomStreams(0), alpha=1.2)
    draws = [sample() for _ in range(500)]
    top = draws.count(corpus.paths[0])
    mid = draws.count(corpus.paths[25])
    assert top > mid


def test_hot_file_sampler_constant():
    sample = hot_file_sampler("/hot.gif")
    assert all(sample() == "/hot.gif" for _ in range(5))


def test_weighted_sampler_respects_weights():
    sample = weighted_sampler([("/a", 0.99), ("/b", 0.01)], RandomStreams(0))
    draws = [sample() for _ in range(200)]
    assert draws.count("/a") > 180


def test_sampler_validation():
    from repro.workload.corpus import Corpus
    empty = Corpus(name="empty")
    with pytest.raises(ValueError):
        uniform_sampler(empty, RandomStreams(0))
    with pytest.raises(ValueError):
        weighted_sampler([], RandomStreams(0))


# ----------------------------------------------------------------- workloads
def test_burst_workload_shape():
    corpus = uniform_corpus(3, 1.0, 1)
    wl = burst_workload(4, 3.0, uniform_sampler(corpus, RandomStreams(0)))
    assert len(wl) == 12
    times = [a.time for a in wl]
    assert times == sorted(times)
    # 4 simultaneous arrivals at each of t=0,1,2.
    assert times.count(0.0) == 4 and times.count(2.0) == 4
    assert wl.offered_rps == pytest.approx(4.0)


def test_burst_workload_client_mix():
    corpus = uniform_corpus(3, 1.0, 1)
    rng = RandomStreams(0)
    wl = burst_workload(10, 5.0, uniform_sampler(corpus, rng),
                        client_mix=[("ucsb", 0.8), ("rutgers", 0.2)], rng=rng)
    clients = {a.client for a in wl}
    assert clients == {"ucsb", "rutgers"}


def test_poisson_workload_rate():
    corpus = uniform_corpus(3, 1.0, 1)
    rng = RandomStreams(0)
    wl = poisson_workload(10.0, 100.0, uniform_sampler(corpus, rng), rng)
    assert len(wl) == pytest.approx(1000, rel=0.15)
    assert all(0 <= a.time < 100.0 for a in wl)


def test_ramp_workload_increases():
    corpus = uniform_corpus(3, 1.0, 1)
    wl = ramp_workload(1, 3, 2.0, uniform_sampler(corpus, RandomStreams(0)))
    # 2 s at 1 rps + 2 s at 2 rps + 2 s at 3 rps = 12 arrivals.
    assert len(wl) == 12
    assert wl.duration == pytest.approx(6.0)


def test_workload_validation():
    corpus = uniform_corpus(3, 1.0, 1)
    sampler = uniform_sampler(corpus, RandomStreams(0))
    with pytest.raises(ValueError):
        burst_workload(0, 1.0, sampler)
    with pytest.raises(ValueError):
        burst_workload(1, 0.0, sampler)
    with pytest.raises(ValueError):
        poisson_workload(0.0, 1.0, sampler, RandomStreams(0))
    with pytest.raises(ValueError):
        ramp_workload(3, 1, 1.0, sampler)
    with pytest.raises(ValueError):
        burst_workload(1, 1.0, sampler, client_mix=[("a", 1.0)])
