"""Detailed httpd behaviour tests (repro.web.server)."""

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.core import CostParameters
from repro.sim import Trace


def one_node(policy="round-robin", **kw):
    cluster = SWEBCluster(meiko_cs2(1), policy=policy, seed=1, **kw)
    cluster.add_file("/page.html", 1e4, home=0)
    return cluster


def test_connection_accounting_returns_to_zero():
    cluster = one_node()
    procs = [cluster.fetch("/page.html") for _ in range(5)]
    for p in procs:
        cluster.run(until=p)
    server = cluster.servers[0]
    assert server.connections_active == 0
    assert server.requests_handled == 5
    assert server.connections_refused == 0


def test_preprocessing_cpu_charged_even_for_404():
    cluster = one_node()
    rec = cluster.run(until=cluster.fetch("/nope.html"))
    assert rec.status == 404
    cats = cluster.cpu_seconds_by_category()
    assert cats.get("parsing", 0.0) > 0
    assert cats.get("fork", 0.0) > 0


def test_404_has_no_data_transfer_phase():
    cluster = one_node()
    rec = cluster.run(until=cluster.fetch("/nope.html"))
    assert "data_transfer" not in rec.phases
    assert "preprocessing" in rec.phases


def test_head_vs_get_cpu_send_cost():
    c1 = one_node()
    c1.run(until=c1.client().fetch("/page.html", method="GET"))
    get_send = c1.cpu_seconds_by_category().get("send", 0.0)
    c2 = one_node()
    c2.run(until=c2.client().fetch("/page.html", method="HEAD"))
    head_send = c2.cpu_seconds_by_category().get("send", 0.0)
    assert head_send < get_send


def test_trace_emits_file_read_events():
    trace = Trace()
    cluster = one_node(trace=trace)
    cluster.run(until=cluster.fetch("/page.html"))
    reads = trace.filter(category="io", action="file_read")
    assert len(reads) == 1
    assert reads[0].detail["path"] == "/page.html"
    assert reads[0].detail["source"] in ("cache", "disk")


def test_server_repr_and_hostname():
    cluster = one_node()
    server = cluster.servers[0]
    assert "node=0" in repr(server)
    assert server.hostname == "sweb0.cs.ucsb.edu"


def test_backlog_validation():
    with pytest.raises(ValueError):
        SWEBCluster(meiko_cs2(1), backlog=0)


def test_response_wire_bytes_exceed_body():
    # Headers cost real bytes on the wire: response time for a tiny file
    # is dominated by fixed costs, not the 1-byte body.
    cluster = one_node()
    cluster.add_file("/tiny.html", 1.0, home=0)
    rec = cluster.run(until=cluster.fetch("/tiny.html"))
    assert rec.ok
    assert rec.response_time > 0.07     # preprocess floor


def test_redirect_limit_prevents_ping_pong():
    # Under file-locality every node wants to move the request to the
    # home node; once redirected, the target MUST serve it even if its
    # own policy would bounce it elsewhere.
    cluster = SWEBCluster(meiko_cs2(3), policy="file-locality", seed=1)
    cluster.add_file("/f.gif", 1e5, home=2)
    rec = cluster.run(until=cluster.fetch("/f.gif"))
    assert rec.ok
    assert rec.served_by == 2
    # exactly one redirect happened cluster-wide
    assert cluster.total_redirections() == 1


def test_scheduling_cpu_only_charged_when_broker_consulted():
    rr = one_node(policy="round-robin")
    rr.run(until=rr.fetch("/page.html"))
    assert "scheduling" not in rr.cpu_seconds_by_category()
    sw = one_node(policy="sweb")
    sw.run(until=sw.fetch("/page.html"))
    assert sw.cpu_seconds_by_category().get("scheduling", 0.0) > 0


def test_custom_cost_parameters_change_behaviour():
    fast_params = CostParameters(preprocess_ops=1e3, fork_ops=1e3)
    slow_params = CostParameters(preprocess_ops=8e6, fork_ops=1e6)
    c_fast = one_node(params=fast_params)
    c_slow = one_node(params=slow_params)
    r_fast = c_fast.run(until=c_fast.fetch("/page.html"))
    r_slow = c_slow.run(until=c_slow.fetch("/page.html"))
    assert r_fast.response_time < r_slow.response_time
