"""Cross-cutting integration invariants on full scenario runs."""

import pytest

from repro.cluster import meiko_cs2
from repro.experiments.runner import Scenario, run_scenario
from repro.experiments.table3 import run_cell
from repro.sim import RandomStreams
from repro.workload import bimodal_corpus, burst_workload, uniform_sampler


@pytest.fixture(scope="module")
def loaded_run():
    corpus = bimodal_corpus(60, 4, large_frac=0.4, seed=3)
    wl = burst_workload(8, 8.0, uniform_sampler(corpus, RandomStreams(3)))
    scenario = Scenario(name="inv", spec=meiko_cs2(4), corpus=corpus,
                        workload=wl, policy="sweb", seed=3,
                        dns_ttl=300.0, hosts_per_profile=3)
    return run_scenario(scenario)


def test_every_request_settles(loaded_run):
    for rec in loaded_run.metrics.records:
        assert rec.end is not None
        assert rec.dropped or rec.status is not None


def test_phases_sum_to_response_time(loaded_run):
    for rec in loaded_run.metrics.records:
        if not rec.ok:
            continue
        assert sum(rec.phases.values()) == pytest.approx(rec.response_time,
                                                         rel=0.05)


def test_bytes_served_match_request_sizes(loaded_run):
    cluster = loaded_run.cluster
    ok_bytes = sum(rec.size for rec in loaded_run.metrics.records if rec.ok)
    # Every OK body crossed the Internet boundary at least once (plus
    # headers, redirects and retries make the wire total strictly bigger).
    assert cluster.internet.bytes_sent > ok_bytes


def test_served_by_is_a_real_node(loaded_run):
    n = len(loaded_run.cluster.nodes)
    for rec in loaded_run.metrics.records:
        if rec.ok:
            assert 0 <= rec.served_by < n
            assert 0 <= rec.dns_node < n


def test_redirected_requests_marked_consistently(loaded_run):
    for rec in loaded_run.metrics.records:
        if rec.ok and rec.redirected:
            assert rec.served_by != rec.dns_node
        if rec.ok and not rec.redirected:
            assert rec.served_by == rec.dns_node


def test_cpu_accounting_covers_all_activity(loaded_run):
    cats = loaded_run.cluster.cpu_seconds_by_category()
    assert set(cats) <= {"fork", "parsing", "scheduling", "send", "loadd",
                         "cgi"}
    assert cats["parsing"] > 0 and cats["send"] > 0


def test_simulated_clock_is_finite_and_past_workload(loaded_run):
    last_start = max(rec.start for rec in loaded_run.metrics.records)
    assert loaded_run.finished_at >= last_start


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_sweb_beats_round_robin_across_seeds(seed):
    """The Table 3 heavy-load win is not single-seed luck."""
    sweb = run_cell(30, "sweb", duration=10.0, seed=seed)
    rr = run_cell(30, "round-robin", duration=10.0, seed=seed)
    assert sweb.mean_response_time < rr.mean_response_time * 1.05
