"""Tests for the scheduling layer (``repro.sched``) and the policy zoo.

Covers the registry/metadata contract, the heterogeneity (speed-factor)
model, rendezvous hashing, the fluid-model policy kernels — including
the golden-fingerprint pins that prove the strategy refactor did not
perturb the pre-zoo SWEB path by a single bit — and the cross-model
property claims the X11 tournament (docs/SCHEDULING.md) is built on:
po2 never loses to random, JSQ wins the homogeneous 2-node toy, and
the fluid and per-client models agree on the headline orderings.
"""

import pytest

from repro.cluster import heterogeneous_meiko, meiko_cs2
from repro.core import make_policy
from repro.experiments.runner import run_scenario
from repro.experiments.tournament import (
    GOLDEN_SWEB_50K,
    client_scenario,
    fluid_cell,
    make_cells,
)
from repro.sched import (
    MIXED_GENERATION,
    POLICIES,
    SpeedFactors,
    fluid_policy_names,
    per_client_policy_names,
    policy_names,
    preference_order,
    rank_preferences,
    stable_hash64,
)
from repro.sim import RandomStreams
from repro.workload import FluidScenario, run_fluid


def _fluid_mean(result):
    return result.registry.histogram("fluid.latency_s").mean


# -- registry --------------------------------------------------------------

def test_registry_metadata_complete():
    assert set(policy_names()) == set(POLICIES)
    for name, info in POLICIES.items():
        assert info.name == name
        assert info.summary
        assert info.reads
        assert info.complexity


def test_registry_and_factory_agree():
    rng = RandomStreams(seed=3)
    for name in per_client_policy_names():
        policy = make_policy(name, rng=rng)
        assert policy.name == name
    with pytest.raises(ValueError):
        make_policy("frobnicator")


def test_fluid_names_subset_and_validated():
    assert set(fluid_policy_names()) <= set(policy_names())
    for name in fluid_policy_names():
        FluidScenario(name="ok", policy=name, n_requests=10).validate()
    with pytest.raises(ValueError):
        FluidScenario(name="bad", policy="cpu-only", n_requests=10).validate()


# -- speed factors ---------------------------------------------------------

def test_speed_factors_take_and_uniform():
    assert MIXED_GENERATION.num_nodes == 6
    assert not MIXED_GENERATION.homogeneous
    assert sum(MIXED_GENERATION.cpu) == pytest.approx(6.0)
    sub = MIXED_GENERATION.take(4)
    assert sub.num_nodes == 4
    assert sub.cpu == MIXED_GENERATION.cpu[:4]
    assert SpeedFactors.uniform(3).homogeneous
    with pytest.raises(ValueError):
        SpeedFactors(cpu=(1.0, -1.0), disk=(1.0, 1.0), mem=(1.0, 1.0))


def test_heterogeneous_meiko_scales_node_specs():
    hom = meiko_cs2(4)
    het = heterogeneous_meiko(4)
    factors = MIXED_GENERATION.take(4)
    assert het.name == "hetmeiko"
    for i, (h, x) in enumerate(zip(hom.nodes, het.nodes)):
        assert x.cpu_speed == pytest.approx(h.cpu_speed * factors.cpu[i])
        assert x.disk_bandwidth == pytest.approx(
            h.disk_bandwidth * factors.disk[i])
        assert x.mem_bandwidth == pytest.approx(
            h.mem_bandwidth * factors.mem[i])


def test_with_speed_factors_checks_length():
    with pytest.raises(ValueError):
        meiko_cs2(4).with_speed_factors(MIXED_GENERATION)  # 6 != 4


# -- rendezvous hashing ----------------------------------------------------

def test_stable_hash_is_stable_and_spread():
    assert stable_hash64("path-0") == stable_hash64("path-0")
    assert stable_hash64("path-0") != stable_hash64("path-1")


def test_preference_order_is_permutation():
    for key in ("a", "b", 17):
        order = preference_order(key, 5)
        assert sorted(order) == list(range(5))
    assert preference_order("a", 5) == preference_order("a", 5)
    prefs = rank_preferences(8, 4)
    assert len(prefs) == 8
    assert all(sorted(p) == list(range(4)) for p in prefs)
    # different keys spread their first choice around
    assert len({p[0] for p in prefs}) > 1


# -- golden fingerprints (bit-identity of the refactor) --------------------

GOLDEN_DEFAULT_50K = ("7a743f16064058ede5e5312f8e7c7f51"
                      "ff551719da6702e4466a58ace78cdb8a")
GOLDEN_UNIFORM_50K = ("19866200d49e9a194f7070c6c855d723"
                      "eb8ead718bb97fa91e5cf70357174409")
GOLDEN_2NODE_20K = ("f10c8478b3355083fa66fc7dc04bc471"
                    "0dbcbb1c0009ad845727316aa5f1e60f")


def test_default_sweb_fingerprint_is_pre_zoo():
    fp = run_fluid(FluidScenario(n_requests=50_000)).fingerprint
    assert fp == GOLDEN_DEFAULT_50K
    assert GOLDEN_SWEB_50K == GOLDEN_DEFAULT_50K


def test_uniform_popularity_fingerprint_is_pre_zoo():
    fp = run_fluid(FluidScenario(n_requests=50_000, alpha=None)).fingerprint
    assert fp == GOLDEN_UNIFORM_50K


def test_small_cluster_fingerprint_is_pre_zoo():
    fp = run_fluid(FluidScenario(nodes=2, rate=900.0,
                                 n_requests=20_000)).fingerprint
    assert fp == GOLDEN_2NODE_20K


# -- fluid policy kernels --------------------------------------------------

@pytest.mark.parametrize("policy", fluid_policy_names())
def test_fluid_policies_deterministic_on_het(policy):
    cell = fluid_cell(policy, "het", "zipf", n_requests=5_000)
    a = run_fluid(cell.scenario)
    b = run_fluid(cell.scenario)
    assert a.fingerprint == b.fingerprint
    assert a.served == b.served


@pytest.mark.parametrize("cluster", ("hom", "het"))
@pytest.mark.parametrize("popularity", ("uniform", "zipf"))
def test_po2_never_worse_than_random(cluster, popularity):
    """Two choices beat zero choices on every tournament grid cell."""
    def mean(policy):
        cell = fluid_cell(policy, cluster, popularity, n_requests=30_000)
        return _fluid_mean(run_fluid(cell.scenario))
    assert mean("po2") <= mean("random")


def test_jsq_wins_homogeneous_two_node_toy():
    """On 2 identical nodes JSQ is the optimal count-based rule."""
    def mean(policy):
        s = FluidScenario(name=f"toy-{policy}", nodes=2, rate=1_800.0,
                          n_requests=40_000, policy=policy, seed=7)
        return _fluid_mean(run_fluid(s))
    jsq = mean("jsq")
    for rival in ("round-robin", "random", "po2", "lwl"):
        assert jsq <= mean(rival), rival


# -- cross-model agreement -------------------------------------------------

def test_fluid_and_per_client_models_agree_on_headline_ordering():
    """Both models rank load-aware sweb/jsq above load-blind random."""
    def fmean(policy):
        cell = fluid_cell(policy, "het", "uniform", n_requests=30_000)
        return _fluid_mean(run_fluid(cell.scenario))

    def cmean(policy):
        return run_scenario(client_scenario(policy)).mean_response_time

    for mean in (fmean, cmean):
        random = mean("random")
        assert mean("sweb") < random
        assert mean("jsq") < random


# -- tournament grid structure ---------------------------------------------

def test_make_cells_covers_the_grid():
    cells = make_cells(1_000)
    assert len(cells) == len(fluid_policy_names()) * 4
    ids = [c.cell_id for c in cells]
    assert len(set(ids)) == len(ids)
    for cell in cells:
        cell.scenario.validate()
