"""End-to-end integration tests: client → DNS → httpd → broker → reply."""

import pytest

from repro import SWEBCluster, meiko_cs2, sun_now, RUTGERS_CLIENT, UCSB_CLIENT
from repro.core import CostParameters
from repro.sim import Trace


def small_cluster(policy="sweb", n=3, **kw):
    cluster = SWEBCluster(meiko_cs2(n), policy=policy, seed=7, **kw)
    cluster.add_file("/index.html", 1024.0, home=0)
    cluster.add_file("/big.gif", 1.5e6, home=1)
    return cluster


def test_basic_fetch_completes_with_200():
    cluster = small_cluster()
    proc = cluster.fetch("/index.html")
    rec = cluster.run(until=proc)
    assert rec.ok and rec.status == 200
    assert rec.response_time is not None and rec.response_time > 0
    assert rec.served_by is not None


def test_missing_file_gets_404():
    cluster = small_cluster()
    proc = cluster.fetch("/missing.html")
    rec = cluster.run(until=proc)
    assert rec.status == 404 and not rec.ok and not rec.dropped


def test_post_gets_501():
    cluster = small_cluster()
    client = cluster.client()
    proc = client.fetch("/index.html", method="POST")
    rec = cluster.run(until=proc)
    assert rec.status == 501


def test_head_returns_no_body_faster():
    cluster = small_cluster(policy="round-robin")
    client = cluster.client()
    p1 = client.fetch("/big.gif", method="HEAD")
    rec_head = cluster.run(until=p1)
    cluster2 = small_cluster(policy="round-robin")
    p2 = cluster2.client().fetch("/big.gif", method="GET")
    rec_get = cluster2.run(until=p2)
    assert rec_head.ok and rec_get.ok
    assert rec_head.response_time < rec_get.response_time


def test_dns_round_robin_spreads_requests():
    cluster = small_cluster(policy="round-robin", n=3)
    client = cluster.client()
    procs = [client.fetch("/index.html") for _ in range(6)]
    for p in procs:
        cluster.run(until=p)
    dns_nodes = [r.dns_node for r in cluster.metrics.records]
    assert dns_nodes == [0, 1, 2, 0, 1, 2]


def test_redirect_once_only_and_marked():
    # File lives on node 1; client lands on node 0 under file-locality.
    cluster = SWEBCluster(meiko_cs2(2), policy="file-locality", seed=1)
    cluster.add_file("/only-on-1.gif", 1.5e6, home=1)
    client = cluster.client()
    proc = client.fetch("/only-on-1.gif")
    rec = cluster.run(until=proc)
    assert rec.ok
    assert rec.dns_node == 0
    assert rec.served_by == 1
    assert rec.redirected
    assert cluster.total_redirections() == 1


def test_cgi_executes_and_returns_output():
    cluster = small_cluster()
    cluster.add_cgi("/cgi-bin/query", cpu_ops=4e6, output_bytes=2e4)
    proc = cluster.fetch("/cgi-bin/query")
    rec = cluster.run(until=proc)
    assert rec.ok
    shares = cluster.cpu_seconds_by_category()
    assert shares.get("cgi", 0.0) == pytest.approx(0.1)  # 4e6 ops / 40e6


def test_cgi_never_redirected():
    cluster = SWEBCluster(meiko_cs2(2), policy="file-locality", seed=1)
    cluster.add_cgi("/cgi-bin/q", cpu_ops=1e6, output_bytes=100.0)
    proc = cluster.fetch("/cgi-bin/q")
    rec = cluster.run(until=proc)
    assert rec.ok and not rec.redirected


def test_backlog_overflow_refuses_connections():
    cluster = SWEBCluster(meiko_cs2(1), policy="round-robin", seed=1,
                          backlog=4)
    cluster.add_file("/big.gif", 1.5e6, home=0)
    client = cluster.client()
    procs = [client.fetch("/big.gif") for _ in range(12)]
    for p in procs:
        cluster.run(until=p)
    refused = [r for r in cluster.metrics.records
               if r.dropped and r.drop_reason == "refused"]
    assert len(refused) >= 1
    assert cluster.servers[0].connections_refused == len(refused)


def test_client_timeout_drops_request():
    # One node, glacial disk: the fetch cannot finish within the timeout.
    spec = meiko_cs2(1)
    from dataclasses import replace
    slow_nodes = tuple(replace(ns, disk_bandwidth=1e3) for ns in spec.nodes)
    spec = replace(spec, nodes=slow_nodes)
    cluster = SWEBCluster(spec, policy="round-robin", seed=1)
    cluster.add_file("/huge.gif", 1e6, home=0)
    client = cluster.client(timeout=5.0)
    proc = client.fetch("/huge.gif")
    rec = cluster.run(until=proc)
    assert rec.dropped and rec.drop_reason == "timeout"
    assert rec.end == pytest.approx(5.0, abs=0.2)


def test_departed_node_refuses_then_survivors_serve():
    cluster = small_cluster(policy="round-robin", n=3)
    cluster.node_leave(1)
    client = cluster.client()
    procs = [client.fetch("/index.html") for _ in range(3)]
    for p in procs:
        cluster.run(until=p)
    outcomes = [(r.dns_node, r.dropped) for r in cluster.metrics.records]
    # DNS still rotates to node 1 (stale zone), which refuses.
    assert (1, True) in outcomes
    assert (0, False) in outcomes and (2, False) in outcomes


def test_rutgers_client_pays_wan_latency():
    c1 = small_cluster(policy="round-robin")
    p1 = c1.client(profile=UCSB_CLIENT).fetch("/index.html")
    local_rec = c1.run(until=p1)
    c2 = small_cluster(policy="round-robin")
    p2 = c2.client(profile=RUTGERS_CLIENT).fetch("/index.html")
    remote_rec = c2.run(until=p2)
    assert remote_rec.response_time > local_rec.response_time


def test_phase_accounting_sums_to_response_time():
    cluster = small_cluster(policy="sweb")
    proc = cluster.fetch("/big.gif")
    rec = cluster.run(until=proc)
    assert rec.ok
    total_phases = sum(rec.phases.values())
    assert total_phases == pytest.approx(rec.response_time, rel=0.05)


def test_trace_records_full_transaction():
    trace = Trace()
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=1, trace=trace)
    cluster.add_file("/a.html", 1e4, home=0)
    proc = cluster.fetch("/a.html")
    cluster.run(until=proc)
    actions = trace.actions(category="http")
    assert "dns_lookup" in actions
    assert "complete" in actions


def test_sweb_on_now_testbed_works_end_to_end():
    cluster = SWEBCluster(sun_now(2), policy="sweb", seed=3)
    cluster.add_file("/x.html", 2e4, home=0)
    proc = cluster.fetch("/x.html")
    rec = cluster.run(until=proc)
    assert rec.ok


def test_deterministic_replay_same_seed():
    def run_once():
        cluster = small_cluster(policy="sweb")
        client = cluster.client()
        procs = [client.fetch("/big.gif") for _ in range(5)]
        for p in procs:
            cluster.run(until=p)
        return [(r.response_time, r.served_by, r.dropped)
                for r in cluster.metrics.records]

    assert run_once() == run_once()
