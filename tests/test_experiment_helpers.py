"""Unit tests for experiment-module helper functions."""

import pytest

from repro.experiments.dynamics import queue_trajectory
from repro.experiments.figure1 import transaction_trace
from repro.experiments.forwarding import fetch_time
from repro.experiments.skewed import run_policy
from repro.experiments.table2 import sweep_nodes
from repro.experiments.table3 import run_cell
from repro.cluster import meiko_cs2


def test_transaction_trace_returns_ok_record():
    trace, record = transaction_trace(path="/x.html", size=5e3)
    assert record.ok
    assert len(trace) > 0
    assert any(r.category == "dns" for r in trace)


def test_skewed_run_policy_short():
    res = run_policy("round-robin", duration=5.0, rps=3)
    assert res.completed > 0
    assert res.drop_rate == 0.0


def test_forwarding_fetch_time_positive_and_ordered():
    t_small = fetch_time("forward", 1e3)
    t_big = fetch_time("forward", 1e6)
    assert 0 < t_small < t_big


def test_queue_trajectory_samples_every_second():
    backlog, metrics = queue_trajectory(rps=4, duration=4.0)
    assert len(backlog) >= 4
    assert metrics.total == 16
    assert all(b >= 0 for b in backlog)


def test_sweep_nodes_returns_each_count():
    out = sweep_nodes(meiko_cs2, (1, 2), size=1e4, rps=3, duration=3.0)
    assert set(out) == {1, 2}
    for res in out.values():
        assert res.metrics.total == 9


def test_table3_run_cell_policies_share_workload_shape():
    a = run_cell(5, "round-robin", duration=4.0)
    b = run_cell(5, "sweb", duration=4.0)
    assert a.metrics.total == b.metrics.total
    assert [r.path for r in a.metrics.records] == \
        [r.path for r in b.metrics.records]
