"""Property-based tests (hypothesis) on the domain layers.

Invariants:

* HTTP request format/parse is a lossless round trip for valid inputs;
* CLF format/parse round-trips entries;
* the page cache never exceeds capacity and its byte accounting is exact;
* page-cache hit/miss counters tally every lookup, oversized files are
  never admitted, and ``entries()`` snapshots are side-effect free;
* fair-share allocation respects caps and never exceeds total rate;
* the broker's choice always carries the minimal estimate;
* the §3.3 bound is monotone in p and antitone in F.
"""

import math
import string

from hypothesis import assume, given, settings, strategies as st

from repro.cluster import PageCache
from repro.core import AnalysisInputs, max_sustained_rps
from repro.sim import FairShareServer, Simulator
from repro.web import HTTPRequest
from repro.workload.logs import CLFEntry, format_clf, parse_clf

# ------------------------------------------------------------------- HTTP
path_segments = st.lists(
    st.text(alphabet=string.ascii_letters + string.digits + "-_.",
            min_size=1, max_size=12),
    min_size=1, max_size=5)
header_names = st.text(alphabet=string.ascii_letters + "-", min_size=1,
                       max_size=16)
header_values = st.text(alphabet=string.ascii_letters + string.digits + " -/.",
                        min_size=0, max_size=30).map(str.strip)


@given(method=st.sampled_from(["GET", "HEAD", "POST"]),
       segments=path_segments,
       headers=st.dictionaries(header_names, header_values, max_size=5))
@settings(max_examples=100, deadline=None)
def test_http_request_roundtrip(method, segments, headers):
    assume("Host" not in headers)
    path = "/" + "/".join(segments)
    req = HTTPRequest(method=method, path=path, host="sweb0.cs.ucsb.edu",
                      headers=headers)
    parsed = HTTPRequest.parse(req.format())
    assert parsed.method == method
    assert parsed.path == path
    for key, value in headers.items():
        assert parsed.headers[key] == value


# -------------------------------------------------------------------- CLF
@given(host=st.text(alphabet=string.ascii_lowercase + ".", min_size=1,
                    max_size=20).filter(lambda h: " " not in h),
       segments=path_segments,
       status=st.sampled_from([200, 302, 404, 501, 503]),
       nbytes=st.integers(min_value=0, max_value=10**9),
       offset=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=100, deadline=None)
def test_clf_roundtrip(host, segments, status, nbytes, offset):
    from datetime import datetime, timedelta, timezone
    when = datetime(1996, 4, 15, tzinfo=timezone.utc) + timedelta(seconds=offset)
    entry = CLFEntry(host=host, time=when, method="GET",
                     path="/" + "/".join(segments), status=status,
                     nbytes=nbytes)
    parsed = parse_clf(format_clf(entry), strict=True)
    assert len(parsed) == 1
    back = parsed[0]
    assert back.host == entry.host
    assert back.path == entry.path
    assert back.status == status and back.nbytes == nbytes
    assert back.time == when


# ------------------------------------------------------------------ cache
cache_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20),       # file id
              st.floats(min_value=0.1, max_value=60.0)),    # size
    min_size=1, max_size=40)


@given(capacity=st.floats(min_value=1.0, max_value=100.0), ops=cache_ops)
@settings(max_examples=100, deadline=None)
def test_page_cache_capacity_and_accounting(capacity, ops):
    cache = PageCache(capacity)
    shadow: dict[str, float] = {}
    for fid, size in ops:
        path = f"/f{fid}"
        if cache.lookup(path):
            assert path in shadow
        else:
            inserted = cache.insert(path, size)
            if inserted:
                shadow[path] = size
            # Rebuild the shadow from evictions: trust used_bytes check.
        shadow = {p: s for p, s in shadow.items() if p in cache}
        assert cache.used_bytes <= capacity + 1e-9
        assert math.isclose(cache.used_bytes, sum(shadow.values()),
                            rel_tol=1e-9, abs_tol=1e-9)


@given(capacity=st.floats(min_value=1.0, max_value=100.0), ops=cache_ops)
@settings(max_examples=100, deadline=None)
def test_page_cache_counters_and_entries(capacity, ops):
    """Counter and entries() invariants under arbitrary op sequences.

    hits + misses always equals the number of lookups; a file larger
    than the whole cache is never admitted; and ``entries()`` (what the
    cooperative-cache directory samples) always agrees byte-for-byte
    with the accounting, without perturbing LRU order or counters.
    """
    cache = PageCache(capacity)
    lookups = 0
    for fid, size in ops:
        path = f"/f{fid}"
        was_resident = path in cache
        cache.lookup(path)
        lookups += 1
        used_before = cache.used_bytes
        cache.insert(path, size)
        if size > capacity:
            # An oversized insert is a no-op: residency (possibly from an
            # earlier, fitting insert) and accounting are untouched.
            assert (path in cache) == was_resident
            assert cache.used_bytes == used_before
        before = (cache.hits, cache.misses, cache.evictions)
        snapshot = cache.entries()
        assert (cache.hits, cache.misses, cache.evictions) == before
        assert snapshot == cache.entries()  # no side effects on order
        assert all(s <= capacity for _, s in snapshot)
        assert math.isclose(sum(s for _, s in snapshot), cache.used_bytes,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert len(snapshot) == len(cache)
        assert cache.hits + cache.misses == lookups


# ------------------------------------------------------------- fair share
@given(jobs=st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=50.0),        # work
              st.floats(min_value=0.5, max_value=4.0),         # weight
              st.one_of(st.none(),
                        st.floats(min_value=0.5, max_value=5.0))),  # cap
    min_size=1, max_size=8),
    rate=st.floats(min_value=1.0, max_value=20.0))
@settings(max_examples=80, deadline=None)
def test_fair_share_allocation_respects_caps_and_rate(jobs, rate):
    sim = Simulator()
    srv = FairShareServer(sim, rate=rate)
    handles = [srv.submit(work, weight=w, cap=c) for work, w, c in jobs]
    # Inspect the instantaneous allocation.
    total = sum(j.rate for j in handles)
    assert total <= rate + 1e-6
    for handle, (_, _, cap) in zip(handles, jobs):
        if cap is not None:
            assert handle.rate <= cap + 1e-6
    # If nobody is capped below fair share, the full rate is used.
    sim.run()
    assert srv.njobs == 0


@given(jobs=st.lists(st.floats(min_value=1.0, max_value=30.0),
                     min_size=2, max_size=6))
@settings(max_examples=60, deadline=None)
def test_fair_share_equal_weights_finish_in_work_order(jobs):
    sim = Simulator()
    srv = FairShareServer(sim, rate=7.0)
    finish: dict[int, float] = {}

    def go(i, work):
        job = srv.submit(work)
        yield job.done
        finish[i] = sim.now

    for i, work in enumerate(jobs):
        sim.spawn(go(i, work))
    sim.run()
    # Equal shares from t=0: completion order == work order.
    order = sorted(range(len(jobs)), key=lambda i: (jobs[i], i))
    times = [finish[i] for i in order]
    assert times == sorted(times)


# ---------------------------------------------------------------- analysis
@given(p=st.integers(min_value=1, max_value=32),
       F=st.floats(min_value=1e3, max_value=5e6),
       A=st.floats(min_value=0.0, max_value=0.2))
@settings(max_examples=100, deadline=None)
def test_analysis_bound_monotone_in_nodes(p, F, A):
    a = max_sustained_rps(AnalysisInputs(p=p, F=F, b1=5e6, b2=4.5e6, A=A))
    b = max_sustained_rps(AnalysisInputs(p=p + 1, F=F, b1=5e6, b2=4.5e6, A=A))
    assert b >= a - 1e-9


@given(p=st.integers(min_value=1, max_value=16),
       F=st.floats(min_value=1e3, max_value=2e6))
@settings(max_examples=100, deadline=None)
def test_analysis_bound_antitone_in_file_size(p, F):
    a = max_sustained_rps(AnalysisInputs(p=p, F=F, b1=5e6, b2=4.5e6, A=0.01))
    b = max_sustained_rps(AnalysisInputs(p=p, F=F * 2, b1=5e6, b2=4.5e6,
                                         A=0.01))
    assert b <= a + 1e-9
