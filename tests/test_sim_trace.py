"""Unit tests for the structured trace (repro.sim.trace)."""

from repro.sim import TRACE_DETAIL, TRACE_SUMMARY, Trace


def make_trace():
    tr = Trace()
    tr.emit(0.0, "http", "client-0", "dns_lookup", host="sweb.ucsb.edu")
    tr.emit(0.1, "http", "client-0", "connect", node=2)
    tr.emit(0.2, "sched", "broker-2", "choose_server", winner=3)
    tr.emit(0.3, "http", "client-0", "redirect", to=3)
    return tr


def test_emit_and_len():
    tr = make_trace()
    assert len(tr) == 4


def test_filter_by_category():
    tr = make_trace()
    assert len(tr.filter(category="http")) == 3
    assert len(tr.filter(category="sched")) == 1


def test_filter_by_actor_and_action():
    tr = make_trace()
    recs = tr.filter(actor="client-0", action="connect")
    assert len(recs) == 1
    assert recs[0].detail == {"node": 2}


def test_filter_predicate():
    tr = make_trace()
    recs = tr.filter(predicate=lambda r: r.time >= 0.2)
    assert [r.action for r in recs] == ["choose_server", "redirect"]


def test_actions_helper():
    tr = make_trace()
    assert tr.actions(category="http") == ["dns_lookup", "connect", "redirect"]


def test_disabled_trace_records_nothing():
    tr = Trace(enabled=False)
    tr.emit(0.0, "x", "y", "z")
    assert len(tr) == 0


def test_max_records_cap():
    tr = Trace(max_records=2)
    for i in range(5):
        tr.emit(float(i), "c", "a", f"act{i}")
    assert len(tr) == 2


def test_render_is_readable():
    tr = make_trace()
    text = tr.render(category="sched")
    assert "choose_server" in text
    assert "winner=3" in text


def test_iteration_in_time_order():
    tr = make_trace()
    times = [r.time for r in tr]
    assert times == sorted(times)


def test_summary_level_drops_detail_records():
    tr = Trace(level=TRACE_SUMMARY)
    tr.emit(0.0, "sched", "broker-0", "choose_server")          # SUMMARY
    tr.emit(0.1, "loadd", "loadd-0", "broadcast", level=TRACE_DETAIL)
    assert tr.actions() == ["choose_server"]
    # default level keeps everything
    tr_all = Trace()
    tr_all.emit(0.0, "loadd", "loadd-0", "broadcast", level=TRACE_DETAIL)
    assert len(tr_all) == 1


def test_sample_every_decimates_per_category():
    tr = Trace(sample_every=3)
    for i in range(9):
        tr.emit(float(i), "io", "httpd-0", f"read{i}")
    tr.emit(9.0, "fault", "injector", "apply")   # sparse category survives
    assert tr.actions(category="io") == ["read0", "read3", "read6"]
    assert tr.actions(category="fault") == ["apply"]


def test_active_gate_tracks_enabled_and_cap():
    tr = Trace(max_records=2)
    assert tr.active
    tr.emit(0.0, "c", "a", "x")
    tr.emit(0.1, "c", "a", "y")
    assert not tr.active          # full -> deactivated
    tr2 = Trace()
    tr2.enabled = False
    assert not tr2.active
    tr2.enabled = True
    assert tr2.active
