"""Unit tests for the structured trace (repro.sim.trace)."""

from repro.sim import Trace


def make_trace():
    tr = Trace()
    tr.emit(0.0, "http", "client-0", "dns_lookup", host="sweb.ucsb.edu")
    tr.emit(0.1, "http", "client-0", "connect", node=2)
    tr.emit(0.2, "sched", "broker-2", "choose_server", winner=3)
    tr.emit(0.3, "http", "client-0", "redirect", to=3)
    return tr


def test_emit_and_len():
    tr = make_trace()
    assert len(tr) == 4


def test_filter_by_category():
    tr = make_trace()
    assert len(tr.filter(category="http")) == 3
    assert len(tr.filter(category="sched")) == 1


def test_filter_by_actor_and_action():
    tr = make_trace()
    recs = tr.filter(actor="client-0", action="connect")
    assert len(recs) == 1
    assert recs[0].detail == {"node": 2}


def test_filter_predicate():
    tr = make_trace()
    recs = tr.filter(predicate=lambda r: r.time >= 0.2)
    assert [r.action for r in recs] == ["choose_server", "redirect"]


def test_actions_helper():
    tr = make_trace()
    assert tr.actions(category="http") == ["dns_lookup", "connect", "redirect"]


def test_disabled_trace_records_nothing():
    tr = Trace(enabled=False)
    tr.emit(0.0, "x", "y", "z")
    assert len(tr) == 0


def test_max_records_cap():
    tr = Trace(max_records=2)
    for i in range(5):
        tr.emit(float(i), "c", "a", f"act{i}")
    assert len(tr) == 2


def test_render_is_readable():
    tr = make_trace()
    text = tr.render(category="sched")
    assert "choose_server" in text
    assert "winner=3" in text


def test_iteration_in_time_order():
    tr = make_trace()
    times = [r.time for r in tr]
    assert times == sorted(times)
