"""Benchmark: regenerate the paper's T2 artifact (module table2)."""

from repro.experiments import table2

from conftest import run_once


def test_bench_t2_table2(benchmark, record_artifact):
    report = run_once(benchmark, lambda: table2.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "T2"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
