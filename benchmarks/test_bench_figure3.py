"""Benchmark: regenerate the paper's F3 artifact (module figure3)."""

from repro.experiments import figure3

from conftest import run_once


def test_bench_f3_figure3(benchmark, record_artifact):
    report = run_once(benchmark, lambda: figure3.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "F3"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
