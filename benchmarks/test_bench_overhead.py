"""Benchmark: regenerate the paper's S3 artifact (module overhead)."""

from repro.experiments import overhead

from conftest import run_once


def test_bench_s3_overhead(benchmark, record_artifact):
    report = run_once(benchmark, lambda: overhead.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "S3"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
