"""Benchmark: regenerate the paper's T1 artifact (module table1)."""

from repro.experiments import table1

from conftest import run_once


def test_bench_t1_table1(benchmark, record_artifact):
    report = run_once(benchmark, lambda: table1.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "T1"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
