"""Benchmark: regenerate the X7 artifact (centralized vs distributed)."""

from repro.experiments import centralized

from conftest import run_once


def test_bench_x7_centralized(benchmark, record_artifact):
    report = run_once(benchmark, lambda: centralized.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X7"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
