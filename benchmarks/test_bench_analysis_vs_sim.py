"""Benchmark: regenerate the paper's S1 artifact (module analysis_vs_sim)."""

from repro.experiments import analysis_vs_sim

from conftest import run_once


def test_bench_s1_analysis_vs_sim(benchmark, record_artifact):
    report = run_once(benchmark, lambda: analysis_vs_sim.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "S1"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
