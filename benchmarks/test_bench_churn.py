"""Benchmark: regenerate the paper's X3 artifact (module churn)."""

from repro.experiments import churn

from conftest import run_once


def test_bench_x3_churn(benchmark, record_artifact):
    report = run_once(benchmark, lambda: churn.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X3"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
