"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` regenerates one of the paper's artifacts (a table
or figure), times it via pytest-benchmark, prints the rendered table,
archives it under ``benchmarks/artifacts/`` and asserts that every
qualitative shape check against the paper holds.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture()
def record_artifact():
    """Persist and display an ExperimentReport produced by a benchmark."""

    def _record(report):
        ARTIFACT_DIR.mkdir(exist_ok=True)
        text = report.render()
        (ARTIFACT_DIR / f"{report.exp_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return report

    return _record


def run_once(benchmark, fn):
    """Benchmark an expensive experiment exactly once (no warmup reruns)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
