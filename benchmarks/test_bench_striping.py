"""Benchmark: regenerate the extension artifact in module striping."""

from repro.experiments import striping

from conftest import run_once


def test_bench_striping(benchmark, record_artifact):
    report = run_once(benchmark, lambda: striping.run(fast=True))
    record_artifact(report)
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
