"""Benchmark: regenerate the paper's T5 artifact (module table5)."""

from repro.experiments import table5

from conftest import run_once


def test_bench_t5_table5(benchmark, record_artifact):
    report = run_once(benchmark, lambda: table5.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "T5"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
