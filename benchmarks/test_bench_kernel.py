"""Micro-benchmarks of the simulation substrate itself.

These are classic pytest-benchmark measurements (many rounds): raw event
throughput of the kernel, fair-share reallocation cost, and an
end-to-end requests/second figure for the whole SWEB stack — the numbers
that bound how large an experiment the harness can afford.
"""

from repro import SWEBCluster, meiko_cs2
from repro.sim import FairShareServer, Simulator


def run_timeout_chain(n_events: int) -> int:
    sim = Simulator()

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1.0)

    sim.spawn(ticker())
    sim.run()
    return sim.event_count


def test_bench_kernel_event_throughput(benchmark):
    count = benchmark(run_timeout_chain, 5_000)
    assert count >= 5_000


def run_fair_share(n_jobs: int) -> float:
    sim = Simulator()
    srv = FairShareServer(sim, rate=100.0)

    def submit(i):
        yield sim.timeout(i * 0.01)
        job = srv.submit(1.0 + (i % 7))
        yield job.done

    for i in range(n_jobs):
        sim.spawn(submit(i))
    sim.run()
    return srv.work_completed


def test_bench_fair_share_churn(benchmark):
    done = benchmark(run_fair_share, 300)
    assert done > 0


def run_sweb_requests(n_requests: int) -> int:
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=1)
    for i in range(20):
        cluster.add_file(f"/f{i}.html", 2e4, home=i % 6)
    client = cluster.client()

    def driver():
        for i in range(n_requests):
            yield cluster.sim.timeout(0.05)
            client.fetch(f"/f{i % 20}.html")

    cluster.sim.spawn(driver())
    cluster.run(until=cluster.sim.now + 0.05 * n_requests + 60.0)
    return cluster.metrics.completed


def test_bench_sweb_request_pipeline(benchmark):
    completed = benchmark.pedantic(run_sweb_requests, args=(200,),
                                   rounds=3, iterations=1)
    assert completed == 200
