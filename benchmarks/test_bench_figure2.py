"""Benchmark: regenerate the paper's F2 artifact (module figure2)."""

from repro.experiments import figure2

from conftest import run_once


def test_bench_f2_figure2(benchmark, record_artifact):
    report = run_once(benchmark, lambda: figure2.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "F2"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
