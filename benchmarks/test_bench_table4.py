"""Benchmark: regenerate the paper's T4 artifact (module table4)."""

from repro.experiments import table4

from conftest import run_once


def test_bench_t4_table4(benchmark, record_artifact):
    report = run_once(benchmark, lambda: table4.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "T4"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
