"""Benchmark: regenerate the paper's X2 artifact (module ablation_loadd)."""

from repro.experiments import ablation_loadd

from conftest import run_once


def test_bench_x2_ablation_loadd(benchmark, record_artifact):
    report = run_once(benchmark, lambda: ablation_loadd.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X2"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
