"""Benchmark: regenerate the paper's X1 artifact (module ablation_cost_terms)."""

from repro.experiments import ablation_cost_terms

from conftest import run_once


def test_bench_x1_ablation_cost_terms(benchmark, record_artifact):
    report = run_once(benchmark, lambda: ablation_cost_terms.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X1"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
