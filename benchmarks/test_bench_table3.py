"""Benchmark: regenerate the paper's T3 artifact (module table3)."""

from repro.experiments import table3

from conftest import run_once


def test_bench_t3_table3(benchmark, record_artifact):
    report = run_once(benchmark, lambda: table3.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "T3"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
