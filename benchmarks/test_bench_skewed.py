"""Benchmark: regenerate the paper's S2 artifact (module skewed)."""

from repro.experiments import skewed

from conftest import run_once


def test_bench_s2_skewed(benchmark, record_artifact):
    report = run_once(benchmark, lambda: skewed.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "S2"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
