"""Benchmark: regenerate the paper's F1 artifact (module figure1)."""

from repro.experiments import figure1

from conftest import run_once


def test_bench_f1_figure1(benchmark, record_artifact):
    report = run_once(benchmark, lambda: figure1.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "F1"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
