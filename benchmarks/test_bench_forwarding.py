"""Benchmark: regenerate the X4 artifact (forwarding vs redirection)."""

from repro.experiments import forwarding

from conftest import run_once


def test_bench_x4_forwarding(benchmark, record_artifact):
    report = run_once(benchmark, lambda: forwarding.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X4"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
