"""Benchmark: regenerate the extension artifact in module adaptive."""

from repro.experiments import adaptive

from conftest import run_once


def test_bench_adaptive(benchmark, record_artifact):
    report = run_once(benchmark, lambda: adaptive.run(fast=True))
    record_artifact(report)
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
