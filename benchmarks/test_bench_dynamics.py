"""Benchmark: regenerate the X8 artifact (burst/queue dynamics)."""

from repro.experiments import dynamics

from conftest import run_once


def test_bench_x8_dynamics(benchmark, record_artifact):
    report = run_once(benchmark, lambda: dynamics.run(fast=True))
    record_artifact(report)
    assert report.exp_id == "X8"
    assert report.shape_holds, f"shape checks failed:\n{report.render()}"
